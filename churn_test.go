package s3crm

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"s3crm/internal/diffusion"
	"s3crm/internal/graph"
)

// randomChurnProblem builds a random problem plus an append stream whose
// probabilities stay LT-safe (Σ in-weights ≤ 1 whatever the churn order).
func randomChurnProblem(t *testing.T, r *rand.Rand, n, m, extra int) (*Problem, []EdgeAdd) {
	t.Helper()
	pmax := 1.0 / float64(n+4)
	taken := make(map[int64]bool)
	draw := func(nn int) (int, int, bool) {
		from, to := r.Intn(nn), r.Intn(nn)
		k := int64(from)<<32 | int64(to)
		if from == to || taken[k] {
			return 0, 0, false
		}
		taken[k] = true
		return from, to, true
	}
	b := NewProblem(n)
	for added := 0; added < m; {
		if from, to, ok := draw(n); ok {
			b.AddEdge(from, to, pmax*(0.1+0.9*r.Float64()))
			added++
		}
	}
	p, err := b.Budget(float64(n)).Build()
	if err != nil {
		t.Fatal(err)
	}
	var stream []EdgeAdd
	for len(stream) < extra {
		// The tail of the stream reaches past n: node-growth appends.
		if from, to, ok := draw(n + 4); ok {
			stream = append(stream, EdgeAdd{From: from, To: to, P: pmax * (0.1 + 0.9*r.Float64())})
		}
	}
	return p, stream
}

// coldProblemAfter builds the bit-exact cold comparator for an ApplyEdges
// history: a problem over graph.FromEdgesStable fed the base edges in CSR
// order followed by the appends — the same coin keys the churn lineage
// assigned — with appended users on builder-default attributes.
func coldProblemAfter(t *testing.T, p *Problem, stream []EdgeAdd) *Problem {
	t.Helper()
	edges := p.inst.G.Edges()
	n := p.inst.G.NumNodes()
	for _, e := range stream {
		edges = append(edges, graph.Edge{From: int32(e.From), To: int32(e.To), P: e.P})
		if e.From >= n {
			n = e.From + 1
		}
		if e.To >= n {
			n = e.To + 1
		}
	}
	g, err := graph.FromEdgesStable(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return &Problem{inst: extendInstance(p.inst, g)}
}

// clearSketchTiming zeroes the one Result field that is wall-clock rather
// than deterministic state, so parity tests can DeepEqual whole Results.
func clearSketchTiming(rs ...*Result) {
	for _, r := range rs {
		if r != nil {
			r.SketchBuildNs = 0
		}
	}
}

// TestApplyEdgesColdParity: after ApplyEdges, every engine's Solve and
// Evaluate answers are bit-identical to a campaign built cold over the
// stable-keyed rebuild of the extended graph — across engines and models,
// through pool patching, snapshot reuse and auto-compaction.
func TestApplyEdgesColdParity(t *testing.T) {
	ctx := context.Background()
	for _, engine := range []string{"mc", "worldcache", "ssr"} {
		for _, model := range []string{"ic", "lt"} {
			for _, diff := range []string{"liveedge", "hash"} {
				if diff == "hash" && engine != "mc" {
					continue // substrate choice is orthogonal; one engine covers it
				}
				t.Run(engine+"-"+model+"-"+diff, func(t *testing.T) {
					r := rand.New(rand.NewSource(31))
					p, stream := randomChurnProblem(t, r, 24, 72, 14)
					opts := []Option{
						WithEngine(engine), WithModel(model), WithDiffusion(diff),
						WithSamples(96), WithSeed(7),
					}
					warm, err := p.NewCampaign(opts...)
					if err != nil {
						t.Fatal(err)
					}
					// Warm a snapshot before churn so patching has state to move.
					if _, err := warm.Solve(ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := warm.ApplyEdges(ctx, stream[:9]); err != nil {
						t.Fatal(err)
					}
					if _, err := warm.ApplyEdges(ctx, stream[9:]); err != nil {
						t.Fatal(err)
					}
					cold, err := coldProblemAfter(t, p, stream).NewCampaign(opts...)
					if err != nil {
						t.Fatal(err)
					}
					// Align call sequence numbers (the warm campaign spent
					// call 1 pre-churn) so unpinned scorer streams match.
					if _, err := cold.Solve(ctx); err != nil {
						t.Fatal(err)
					}
					rw, err := warm.Solve(ctx)
					if err != nil {
						t.Fatal(err)
					}
					rc, err := cold.Solve(ctx)
					if err != nil {
						t.Fatal(err)
					}
					clearSketchTiming(rw, rc)
					if !reflect.DeepEqual(rw, rc) {
						t.Fatalf("solve diverged:\nwarm %+v\ncold %+v", rw, rc)
					}
					dep := Deployment{Seeds: rc.Seeds, Coupons: rc.Coupons}
					ew, err := warm.Evaluate(ctx, dep)
					if err != nil {
						t.Fatal(err)
					}
					ec, err := cold.Evaluate(ctx, dep)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ew, ec) {
						t.Fatalf("evaluate diverged:\nwarm %+v\ncold %+v", ew, ec)
					}
				})
			}
		}
	}
}

// TestApplyEdgesSplitEquivalence: the public bit-exactness contract — how an
// append stream is batched cannot matter. One call, two calls and
// edge-at-a-time application answer identically.
func TestApplyEdgesSplitEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, model := range []string{"ic", "lt"} {
		t.Run(model, func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			p, stream := randomChurnProblem(t, r, 20, 60, 12)
			opts := []Option{WithEngine("worldcache"), WithModel(model), WithSamples(64), WithSeed(3)}
			apply := func(splits ...[]EdgeAdd) *Campaign {
				c, err := p.NewCampaign(opts...)
				if err != nil {
					t.Fatal(err)
				}
				for _, b := range splits {
					if _, err := c.ApplyEdges(ctx, b); err != nil {
						t.Fatal(err)
					}
				}
				return c
			}
			one := apply(stream)
			two := apply(stream[:5], stream[5:])
			perEdge := make([][]EdgeAdd, len(stream))
			for i := range stream {
				perEdge[i] = stream[i : i+1]
			}
			many := apply(perEdge...)
			r1, err := one.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := two.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			r3, err := many.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			clearSketchTiming(r1, r2, r3)
			if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(r1, r3) {
				t.Fatalf("batch split changed results:\none %+v\ntwo %+v\nper-edge %+v", r1, r2, r3)
			}
		})
	}
}

// TestApplyEdgesLTRescale: appends that push a user's in-weights past 1 on
// an LT campaign must re-normalize (the un-recapped path silently deviates
// from LT semantics — the categorical draw could never reach the in-row
// tail). The campaign stays serviceable and the precondition holds again.
func TestApplyEdgesLTRescale(t *testing.T) {
	ctx := context.Background()
	p, err := NewProblem(4).
		AddEdge(0, 2, 0.55).AddEdge(1, 2, 0.4).AddEdge(2, 3, 0.3).
		Budget(10).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.NewCampaign(WithEngine("worldcache"), WithModel("lt"), WithSamples(64), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.ApplyEdges(ctx, []EdgeAdd{{From: 3, To: 2, P: 0.5}}) // node 2: Σ = 1.45
	if err != nil {
		t.Fatal(err)
	}
	if !st.LTRescaled {
		t.Fatalf("overweight append did not rescale: %+v", st)
	}
	if st.PoolsDropped == 0 {
		t.Fatalf("rescale kept stale pools: %+v", st)
	}
	if err := diffusion.ValidateLTWeights(c.inst.G); err != nil {
		t.Fatalf("post-rescale precondition violated: %v", err)
	}
	if _, err := c.Solve(ctx); err != nil {
		t.Fatalf("solve after rescale: %v", err)
	}

	// An IC campaign keeps its probabilities; only LT call-state is dropped
	// and the next LT call surfaces the precondition error.
	ic, err := p.NewCampaign(WithEngine("worldcache"), WithSamples(64), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ic.Solve(ctx, WithModel("lt")); err != nil {
		t.Fatal(err)
	}
	st, err = ic.ApplyEdges(ctx, []EdgeAdd{{From: 3, To: 2, P: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if st.LTRescaled || st.PoolsDropped == 0 {
		t.Fatalf("IC campaign churn stats: %+v (want LT pools dropped, no rescale)", st)
	}
	if _, err := ic.Solve(ctx, WithModel("lt")); err == nil || !strings.Contains(err.Error(), "linear-threshold") {
		t.Fatalf("LT call after overweight append on IC campaign: err = %v, want precondition error", err)
	}
	if _, err := ic.Solve(ctx); err != nil {
		t.Fatalf("IC solve after overweight append: %v", err)
	}
}

// TestApplyEdgesValidation: invalid batches are rejected before any state
// changes; the campaign keeps serving.
func TestApplyEdgesValidation(t *testing.T) {
	ctx := context.Background()
	p, err := NewProblem(3).AddEdge(0, 1, 0.5).Budget(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.NewCampaign(WithSamples(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]EdgeAdd{
		{{From: 0, To: 1, P: 0.2}},                           // duplicate arc
		{{From: 1, To: 2, P: 1.5}},                           // probability out of range
		{{From: -1, To: 2, P: 0.5}},                          // negative endpoint
		{{From: 1, To: 2, P: 0.1}, {From: 1, To: 2, P: 0.2}}, // intra-batch duplicate
	} {
		if _, err := c.ApplyEdges(ctx, bad); err == nil {
			t.Fatalf("batch %+v accepted", bad)
		}
	}
	if c.Edges() != 1 || c.Users() != 3 {
		t.Fatalf("rejected batches mutated the graph: %d users, %d edges", c.Users(), c.Edges())
	}
	if _, err := c.Evaluate(ctx, Deployment{Seeds: []int{0}}); err != nil {
		t.Fatalf("campaign unusable after rejected batches: %v", err)
	}
	if st, err := c.ApplyEdges(ctx, nil); err != nil || st != (ChurnStats{}) {
		t.Fatalf("empty batch: %+v, %v", st, err)
	}
}

// TestResolveWarmRestart: Resolve adopts the previous deployment, repairs
// around the churned region, and never reports a worse redemption rate than
// the adopted deployment measures on the new graph.
func TestResolveWarmRestart(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(5))
	p, stream := randomChurnProblem(t, r, 24, 96, 12)
	c, err := p.NewCampaign(WithEngine("worldcache"), WithSamples(96), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := c.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyEdges(ctx, stream); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve(ctx, prev)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "resolve" {
		t.Fatalf("algorithm = %q", got.Algorithm)
	}
	adopted, err := c.Evaluate(ctx, Deployment{Seeds: prev.Seeds, Coupons: prev.Coupons})
	if err != nil {
		t.Fatal(err)
	}
	if got.RedemptionRate < adopted.RedemptionRate {
		t.Fatalf("resolve (%v) worse than adopting the old deployment (%v)",
			got.RedemptionRate, adopted.RedemptionRate)
	}
	c.mu.Lock()
	left := len(c.churned)
	c.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d churn endpoints left unconsumed after Resolve", left)
	}
	// A nil previous result falls back to the full solver.
	full, err := c.Resolve(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Algorithm != "S3CA" {
		t.Fatalf("Resolve(nil) ran %q, want the full solver", full.Algorithm)
	}
}

// TestResolveSSRWarmReuse: Resolve on an ssr campaign re-runs the sketch
// solver warm-started from the pooled sample state — after a ~1% append the
// watermark check must keep the overwhelming majority of pooled samples, and
// the patched re-solve must land within the certified ε of a campaign built
// cold over the extended graph.
func TestResolveSSRWarmReuse(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(21))
	p, stream := randomChurnProblem(t, r, 120, 1200, 12)
	const eps = 0.2
	opts := []Option{WithEngine("ssr"), WithSamples(64), WithSeed(7),
		WithEpsilon(eps), WithDelta(0.1)}
	warm, err := p.NewCampaign(opts...)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := warm.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.ApplyEdges(ctx, stream); err != nil {
		t.Fatal(err)
	}
	got, err := warm.Resolve(ctx, prev)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != "resolve" {
		t.Fatalf("algorithm = %q", got.Algorithm)
	}
	total := got.SketchReused + got.SketchRedrawn
	if total == 0 {
		t.Fatal("ssr Resolve did not take the warm patch path (no reuse accounting)")
	}
	if frac := float64(got.SketchReused) / float64(total); frac < 0.9 {
		t.Fatalf("reused %d of %d pooled samples (%.2f), want >= 0.90",
			got.SketchReused, total, frac)
	}
	cold, err := coldProblemAfter(t, p, stream).NewCampaign(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := cold.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(got.RedemptionRate - rc.RedemptionRate); diff > eps*rc.RedemptionRate {
		t.Fatalf("warm resolve rate %.4f differs from cold %.4f by %.4f (allowed ε·rate = %.4f)",
			got.RedemptionRate, rc.RedemptionRate, diff, eps*rc.RedemptionRate)
	}
	warm.mu.Lock()
	left := len(warm.churned)
	warm.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d churn endpoints left unconsumed after ssr Resolve", left)
	}
}

// TestSketchPoolEpochStaleness: a sample state checked out before an
// ApplyEdges never saw that append's NoteChurn, so its watermark log is
// incomplete — re-pooling it would let a later Resolve patch against missing
// churn. The epoch stamp must drop it.
func TestSketchPoolEpochStaleness(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(8))
	p, stream := randomChurnProblem(t, r, 24, 72, 6)
	c, err := p.NewCampaign(WithEngine("ssr"), WithSamples(48), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	ep := c.engines[c.defaultKey]
	c.mu.Unlock()
	w, epoch := ep.takeSketch(false)
	if w == nil {
		t.Fatal("cold ssr solve pooled no sample state")
	}
	// The state is in flight while an append advances the pool — the
	// straddling-call scenario the stamp exists for.
	if _, err := c.ApplyEdges(ctx, stream); err != nil {
		t.Fatal(err)
	}
	ep.putSketch(w, epoch)
	if n := len(ep.idleSketch); n != 0 {
		t.Fatalf("stale sample state re-pooled across ApplyEdges (%d idle)", n)
	}
	// A current-epoch stamp is accepted, nil puts are ignored, and the idle
	// list never grows past its cap.
	_, epoch2 := ep.takeSketch(true)
	ep.putSketch(nil, epoch2)
	for i := 0; i < maxIdleSketchWarms+2; i++ {
		ep.putSketch(w, epoch2)
	}
	if n := len(ep.idleSketch); n != maxIdleSketchWarms {
		t.Fatalf("idle sketch list = %d states, want the cap %d", n, maxIdleSketchWarms)
	}
}

// TestHoldOutEdges: the split plus its replay restores the exact original
// edge set, and bad fractions are rejected.
func TestHoldOutEdges(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(2))
	p, _ := randomChurnProblem(t, r, 20, 80, 0)
	reduced, stream, err := p.HoldOutEdges(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Edges() - reduced.Edges(); len(stream) != want || len(stream) != 8 {
		t.Fatalf("held out %d edges (reduced by %d), want 8", len(stream), want)
	}
	c, err := reduced.NewCampaign(WithSamples(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyEdges(ctx, stream); err != nil {
		t.Fatal(err)
	}
	if c.Edges() != p.Edges() || c.Users() != p.Users() {
		t.Fatalf("replay restored %d users/%d edges, want %d/%d",
			c.Users(), c.Edges(), p.Users(), p.Edges())
	}
	for _, frac := range []float64{0, 1, -0.5, 1e-9} {
		if _, _, err := p.HoldOutEdges(frac, 1); err == nil {
			t.Fatalf("fraction %v accepted", frac)
		}
	}
}

// TestConcurrentChurn exercises ApplyEdges racing Solve, Evaluate and
// Resolve on one shared campaign — the scenario the epoch-stamped pools and
// the single-lock engine resolution exist for. Both pooled-state engines run
// (worldcache snapshots, ssr sample states). Run under -race in CI.
func TestConcurrentChurn(t *testing.T) {
	for _, engine := range []string{"worldcache", "ssr"} {
		t.Run(engine, func(t *testing.T) { concurrentChurn(t, engine) })
	}
}

func concurrentChurn(t *testing.T, engine string) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(12))
	p, stream := randomChurnProblem(t, r, 24, 60, 24)
	c, err := p.NewCampaign(WithEngine(engine), WithSamples(48), WithSeed(4), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := c.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			dep := Deployment{Seeds: []int{seed}}
			for i := 0; i < 8; i++ {
				if _, err := c.Evaluate(ctx, dep); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := c.Solve(ctx); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i+3 <= len(stream); i += 3 {
			if _, err := c.ApplyEdges(ctx, stream[i:i+3]); err != nil {
				errc <- err
				return
			}
			var rerr error
			if prev, rerr = c.Resolve(ctx, prev); rerr != nil {
				errc <- rerr
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx); err != nil {
		t.Fatalf("campaign broken after concurrent churn: %v", err)
	}
}
