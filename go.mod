module s3crm

go 1.24
