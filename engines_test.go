// Engine-parity tests: every evaluation engine must agree on the reported
// redemption rates. Full evaluations share the simulation kernel across
// engines, so baselines agree exactly; S3CA under the world-cache engine
// ranks ID candidates with frontier replays (a slightly different greedy
// guidance signal), so its agreement is within Monte-Carlo noise.
package s3crm

import (
	"bytes"
	"math"
	"testing"
)

func parityProblem(t *testing.T) *Problem {
	t.Helper()
	p, err := GenerateDataset("Facebook", 100, 3) // 40 users
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEngineParity(t *testing.T) {
	p := parityProblem(t)
	algos := append([]string{"S3CA"}, Baselines()...)
	for _, algo := range algos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			rates := make(map[string]float64, len(Engines()))
			var mcRate float64
			for _, engine := range Engines() {
				opts := Options{Engine: engine, Samples: 300, Seed: 7}
				var (
					r   *Result
					err error
				)
				if algo == "S3CA" {
					r, err = Solve(p, opts)
				} else {
					r, err = RunBaseline(algo, p, opts)
				}
				if err != nil {
					t.Fatalf("%s under %s: %v", algo, engine, err)
				}
				if r.RedemptionRate <= 0 {
					t.Fatalf("%s under %s: non-positive redemption rate %v", algo, engine, r.RedemptionRate)
				}
				rates[engine] = r.RedemptionRate
				if engine == "mc" {
					mcRate = r.RedemptionRate
				}
			}
			for engine, rate := range rates {
				// The baselines have no incremental search paths, so every
				// engine drives them to the same deployment; S3CA's greedy
				// may diverge on near-tie investments under the world-cache
				// ranking signal — and selects on reverse-sample cover counts
				// outright under ssr — hence the MC-noise tolerance.
				tol := 1e-9
				if algo == "S3CA" && (engine == "worldcache" || engine == "ssr") {
					tol = 0.15 * mcRate
				}
				if math.Abs(rate-mcRate) > tol {
					t.Errorf("%s: engine %s rate %v differs from mc rate %v (tol %v)",
						algo, engine, rate, mcRate, tol)
				}
			}
		})
	}
}

// TestEngineParityLazyID re-runs the S3CA parity matrix with the lazy ID
// loop pinned off and on: both variants must stay within the same
// Monte-Carlo tolerance of the exhaustive MC reference under every engine.
func TestEngineParityLazyID(t *testing.T) {
	p := parityProblem(t)
	ref, err := Solve(p, Options{Engine: "mc", Samples: 300, Seed: 7, ExhaustiveID: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range Engines() {
		for _, exhaustive := range []bool{false, true} {
			r, err := Solve(p, Options{Engine: engine, Samples: 300, Seed: 7, ExhaustiveID: exhaustive})
			if err != nil {
				t.Fatalf("S3CA under %s (exhaustive=%v): %v", engine, exhaustive, err)
			}
			tol := 0.15 * ref.RedemptionRate
			if math.Abs(r.RedemptionRate-ref.RedemptionRate) > tol {
				t.Errorf("engine %s exhaustive=%v: rate %v differs from reference %v (tol %v)",
					engine, exhaustive, r.RedemptionRate, ref.RedemptionRate, tol)
			}
		}
	}
}

// TestDiffusionSubstrateParity pins that the live-edge and hash substrates
// are interchangeable bit for bit: the materialized worlds hold exactly the
// flips the hash recomputes, so solver runs are identical — not merely
// close — across substrates, for S3CA and every baseline.
func TestDiffusionSubstrateParity(t *testing.T) {
	p := parityProblem(t)
	algos := append([]string{"S3CA"}, Baselines()...)
	for _, algo := range algos {
		for _, engine := range Engines() {
			var rates []float64
			var seeds [][]int
			for _, diff := range Diffusions() {
				opts := Options{Engine: engine, Diffusion: diff, Samples: 200, Seed: 7}
				var (
					r   *Result
					err error
				)
				if algo == "S3CA" {
					r, err = Solve(p, opts)
				} else {
					r, err = RunBaseline(algo, p, opts)
				}
				if err != nil {
					t.Fatalf("%s under %s/%s: %v", algo, engine, diff, err)
				}
				rates = append(rates, r.RedemptionRate)
				seeds = append(seeds, r.Seeds)
			}
			if rates[0] != rates[1] {
				t.Errorf("%s under %s: substrates disagree: %v vs %v", algo, engine, rates[0], rates[1])
			}
			if len(seeds[0]) != len(seeds[1]) {
				t.Errorf("%s under %s: seed sets differ: %v vs %v", algo, engine, seeds[0], seeds[1])
			} else {
				for i := range seeds[0] {
					if seeds[0][i] != seeds[1][i] {
						t.Errorf("%s under %s: seed sets differ: %v vs %v", algo, engine, seeds[0], seeds[1])
						break
					}
				}
			}
		}
	}
}

func TestEngineUnknownRejected(t *testing.T) {
	p := parityProblem(t)
	if _, err := Solve(p, Options{Engine: "quantum", Samples: 50, Seed: 1}); err == nil {
		t.Fatal("Solve accepted an unknown engine")
	}
	if _, err := Solve(p, Options{Diffusion: "quantum", Samples: 50, Seed: 1}); err == nil {
		t.Fatal("Solve accepted an unknown diffusion substrate")
	}
	if _, err := RunBaseline("IM-U", p, Options{Engine: "quantum", Samples: 50, Seed: 1}); err == nil {
		t.Fatal("RunBaseline accepted an unknown engine")
	}
	if _, err := p.Evaluate(Deployment{Seeds: []int{0}}, Options{Engine: "quantum", Samples: 50}); err == nil {
		t.Fatal("Evaluate accepted an unknown engine")
	}
}

// TestScenarioRoundTripResolves saves a problem, loads it back and
// re-solves both: the loaded problem must describe the identical instance,
// so the deterministic solver must return the identical campaign.
func TestScenarioRoundTripResolves(t *testing.T) {
	orig := parityProblem(t)
	var buf bytes.Buffer
	if err := orig.SaveScenario(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Users() != orig.Users() || loaded.Edges() != orig.Edges() || loaded.Budget() != orig.Budget() {
		t.Fatalf("round trip changed the instance: %d/%d/%v vs %d/%d/%v",
			loaded.Users(), loaded.Edges(), loaded.Budget(),
			orig.Users(), orig.Edges(), orig.Budget())
	}
	opts := Options{Engine: "worldcache", Samples: 200, Seed: 5}
	a, err := Solve(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.RedemptionRate != b.RedemptionRate {
		t.Fatalf("re-solving the loaded scenario gave rate %v, original %v", b.RedemptionRate, a.RedemptionRate)
	}
	if len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("seed sets differ: %v vs %v", a.Seeds, b.Seeds)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed sets differ: %v vs %v", a.Seeds, b.Seeds)
		}
	}
	if len(a.Coupons) != len(b.Coupons) {
		t.Fatalf("allocations differ: %v vs %v", a.Coupons, b.Coupons)
	}
	for v, k := range a.Coupons {
		if b.Coupons[v] != k {
			t.Fatalf("allocations differ at %d: %d vs %d", v, k, b.Coupons[v])
		}
	}
}
