// Package s3crm is a Go implementation of Seed Selection and Social Coupon
// allocation for Redemption Maximization (S3CRM) in online social networks,
// reproducing Chang, Shi, Yang and Chen (ICDE 2019, arXiv:1902.07432).
//
// Social-coupon campaigns (Dropbox referrals, Airbnb travel credits,
// Booking.com invites) reward users for recruiting friends, but each user
// can redeem only a limited number of coupons. Given a social network with
// per-user benefit, seed cost and coupon cost, the S3CRM problem selects a
// seed set and a coupon allocation that maximize the redemption rate — the
// expected benefit of activated users per unit of invested budget — subject
// to an investment budget.
//
// The package exposes:
//
//   - ProblemBuilder / Problem — define an instance (graph, costs, budget);
//   - GenerateDataset — synthetic instances mirroring the paper's Table II
//     dataset profiles (Facebook, Epinions, Google+, Douban);
//   - Solve — the paper's S3CA approximation algorithm;
//   - RunBaseline — the IM-U/IM-L/PM-U/PM-L/IM-S comparison algorithms;
//   - Problem.Evaluate — Monte-Carlo evaluation of any hand-built
//     deployment.
//
// Solve, RunBaseline and Problem.Evaluate all accept an evaluation engine
// through Options.Engine: "mc" (plain Monte Carlo, the default),
// "worldcache" (incremental world-cache evaluation — the solver's greedy
// loops replay only the simulation state a candidate change can affect,
// typically several times faster at the paper's 1000-sample setting), or
// "sketch" (reverse-influence-sampling candidate pruning for the
// baselines). All engines agree on reported metrics within Monte-Carlo
// noise; see DESIGN.md ("Evaluation engines") for the architecture and
// fidelity discussion.
//
// See the examples directory for runnable walkthroughs and EXPERIMENTS.md
// for the paper-reproduction results.
package s3crm

import (
	"fmt"
	"io"
	"sort"

	"s3crm/internal/baselines"
	"s3crm/internal/core"
	"s3crm/internal/costmodel"
	"s3crm/internal/diffusion"
	"s3crm/internal/eval"
	"s3crm/internal/gen"
	"s3crm/internal/gio"
	"s3crm/internal/graph"
	"s3crm/internal/rng"
)

// ProblemBuilder assembles an S3CRM instance.
type ProblemBuilder struct {
	n        int
	edges    []graph.Edge
	benefit  []float64
	seedCost []float64
	scCost   []float64
	budget   float64
	err      error
}

// NewProblem starts a builder for a network of n users (ids 0..n-1). Users
// default to benefit 1, seed cost 1 and coupon cost 1.
func NewProblem(n int) *ProblemBuilder {
	b := &ProblemBuilder{
		n:        n,
		benefit:  make([]float64, n),
		seedCost: make([]float64, n),
		scCost:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.benefit[i], b.seedCost[i], b.scCost[i] = 1, 1, 1
	}
	return b
}

// AddEdge records a directed influence edge with probability p.
func (b *ProblemBuilder) AddEdge(from, to int, p float64) *ProblemBuilder {
	if b.err != nil {
		return b
	}
	if from < 0 || from >= b.n || to < 0 || to >= b.n {
		b.err = fmt.Errorf("s3crm: edge (%d,%d) out of range [0,%d)", from, to, b.n)
		return b
	}
	b.edges = append(b.edges, graph.Edge{From: int32(from), To: int32(to), P: p})
	return b
}

// SetUser sets one user's benefit, seed cost and coupon cost.
func (b *ProblemBuilder) SetUser(id int, benefit, seedCost, scCost float64) *ProblemBuilder {
	if b.err != nil {
		return b
	}
	if id < 0 || id >= b.n {
		b.err = fmt.Errorf("s3crm: user %d out of range [0,%d)", id, b.n)
		return b
	}
	b.benefit[id] = benefit
	b.seedCost[id] = seedCost
	b.scCost[id] = scCost
	return b
}

// Budget sets the investment budget Binv.
func (b *ProblemBuilder) Budget(budget float64) *ProblemBuilder {
	b.budget = budget
	return b
}

// Build validates and returns the problem.
func (b *ProblemBuilder) Build() (*Problem, error) {
	if b.err != nil {
		return nil, b.err
	}
	g, err := graph.FromEdges(b.n, b.edges)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  b.benefit,
		SeedCost: b.seedCost,
		SCCost:   b.scCost,
		Budget:   b.budget,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}

// Problem is an immutable S3CRM instance.
type Problem struct {
	inst *diffusion.Instance
}

// Users returns the number of users.
func (p *Problem) Users() int { return p.inst.G.NumNodes() }

// Edges returns the number of influence edges.
func (p *Problem) Edges() int { return p.inst.G.NumEdges() }

// Budget returns the investment budget.
func (p *Problem) Budget() float64 { return p.inst.Budget }

// GenerateDataset builds a synthetic instance mirroring one of the paper's
// Table II dataset profiles ("Facebook", "Epinions", "Google+", "Douban"),
// scaled down by the given divisor (1 keeps the published size; see
// DESIGN.md on why the datasets are synthetic). Generation and cost
// assignment are deterministic in seed.
func GenerateDataset(name string, scale int, seed uint64) (*Problem, error) {
	preset, err := gen.PresetByName(name)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst, err := eval.BuildInstance(eval.Setup{Preset: preset, Scale: scale, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}

// DatasetNames lists the generatable dataset profiles.
func DatasetNames() []string {
	names := make([]string, 0, 4)
	for _, p := range gen.Presets() {
		names = append(names, p.Name)
	}
	return names
}

// Options tunes Solve and RunBaseline.
type Options struct {
	// Engine selects the evaluation engine: "mc" (the default — plain
	// Monte Carlo, the paper's setting), "worldcache" (incremental
	// world-cache evaluation: the solver snapshots the per-world activation
	// state of the current deployment and evaluates candidate deltas by
	// replaying only the affected frontier, typically several times faster
	// on the greedy ID loop), or "sketch" (Monte-Carlo evaluation with
	// reverse-influence-sampling candidate pruning in the baselines —
	// CandidateCap keeps the top users by estimated influence instead of
	// raw degree). See Engines and DESIGN.md ("Evaluation engines").
	Engine string
	// Diffusion selects the edge-liveness substrate behind every engine:
	// "liveedge" (the default — each possible world's coin flips are
	// materialized once into a packed bitset that all edge probes read,
	// falling back to hashing when the bitsets would exceed an internal
	// memory budget) or "hash" (recompute the stateless hash per probe).
	// The two substrates produce bit-identical results; see Diffusions.
	Diffusion string
	// ExhaustiveID disables S3CA's CELF lazy-greedy investment loop and
	// re-evaluates every candidate each iteration. The lazy loop is
	// typically several times faster and picks the same investments except
	// on adversarially non-submodular instances; this is the escape hatch
	// and reference implementation.
	ExhaustiveID bool
	// Samples is the Monte-Carlo sample count per benefit evaluation
	// (default 1000, the paper's setting).
	Samples int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers parallelizes Monte-Carlo evaluation (0 = sequential).
	Workers int
	// LimitedK overrides the limited coupon strategy quota for baselines
	// (default 32, Dropbox's).
	LimitedK int
	// CandidateCap restricts baseline greedy candidates to the top-N users
	// by degree (0 = all users).
	CandidateCap int
}

// Result reports a solved deployment.
type Result struct {
	Algorithm      string
	Seeds          []int       // selected seed users, ascending
	Coupons        map[int]int // coupon allocation K for users holding any
	RedemptionRate float64     // the S3CRM objective
	Benefit        float64     // expected benefit of activated users
	SeedCost       float64
	CouponCost     float64
	TotalCost      float64
	FarthestHop    float64 // average maximum hop distance from the seeds
	ExploredRatio  float64 // fraction of the network examined (S3CA only)
}

// Solve runs S3CA, the paper's approximation algorithm, on the problem.
func Solve(p *Problem, opts Options) (*Result, error) {
	sol, err := core.Solve(p.inst, core.Options{
		Engine:       opts.Engine,
		Diffusion:    opts.Diffusion,
		Samples:      opts.Samples,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
		ExhaustiveID: opts.ExhaustiveID,
	})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	r, err := resultFromDeployment("S3CA", p, sol.Deployment, opts)
	if err != nil {
		return nil, err
	}
	r.ExploredRatio = float64(sol.Stats.ExploredNodes) / float64(p.Users())
	return r, nil
}

// Baselines lists the algorithm names accepted by RunBaseline.
func Baselines() []string { return []string{"IM-U", "IM-L", "PM-U", "PM-L", "IM-S"} }

// Engines lists the evaluation engines accepted by Options.Engine.
func Engines() []string { return diffusion.Engines() }

// Diffusions lists the edge-liveness substrates accepted by
// Options.Diffusion.
func Diffusions() []string { return diffusion.Diffusions() }

// RunBaseline runs one of the paper's comparison algorithms.
func RunBaseline(name string, p *Problem, opts Options) (*Result, error) {
	cfg := baselines.Config{
		Engine:       opts.Engine,
		Diffusion:    opts.Diffusion,
		Samples:      opts.Samples,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
		CandidateCap: opts.CandidateCap,
		LimitedK:     opts.LimitedK,
	}
	var (
		o   *baselines.Outcome
		err error
	)
	switch name {
	case "IM-U":
		o, err = baselines.IM(p.inst, cfg)
	case "IM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.IM(p.inst, cfg)
	case "PM-U":
		o, err = baselines.PM(p.inst, cfg)
	case "PM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.PM(p.inst, cfg)
	case "IM-S":
		o, err = baselines.IMS(p.inst, cfg)
	default:
		return nil, fmt.Errorf("s3crm: unknown baseline %q (want one of %v)", name, Baselines())
	}
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return resultFromDeployment(name, p, o.Deployment, opts)
}

func resultFromDeployment(name string, p *Problem, d *diffusion.Deployment, opts Options) (*Result, error) {
	samples := opts.Samples
	if samples <= 0 {
		samples = 1000
	}
	est, err := diffusion.NewEngineOpts(p.inst, diffusion.EngineOptions{
		Engine: opts.Engine, Samples: samples, Seed: opts.Seed ^ 0xfeed,
		Workers: opts.Workers, Diffusion: opts.Diffusion,
	})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	res := est.Evaluate(d)
	seedCost := p.inst.SeedCostOf(d)
	scCost := p.inst.SCCostOf(d)
	out := &Result{
		Algorithm:   name,
		Coupons:     map[int]int{},
		Benefit:     res.Benefit,
		SeedCost:    seedCost,
		CouponCost:  scCost,
		TotalCost:   seedCost + scCost,
		FarthestHop: res.FarthestHop,
	}
	if out.TotalCost > 0 {
		out.RedemptionRate = out.Benefit / out.TotalCost
	}
	for _, s := range d.Seeds() {
		out.Seeds = append(out.Seeds, int(s))
	}
	sort.Ints(out.Seeds)
	for _, v := range d.Allocated() {
		out.Coupons[int(v)] = d.K(v)
	}
	return out, nil
}

// Deployment is a hand-built campaign for Problem.Evaluate.
type Deployment struct {
	Seeds   []int
	Coupons map[int]int
}

// Evaluate measures an arbitrary deployment: the expected benefit, the
// closed-form coupon cost, the redemption rate and hop statistics.
func (p *Problem) Evaluate(dep Deployment, opts Options) (*Result, error) {
	d := diffusion.NewDeployment(p.Users())
	for _, s := range dep.Seeds {
		if s < 0 || s >= p.Users() {
			return nil, fmt.Errorf("s3crm: seed %d out of range", s)
		}
		d.AddSeed(int32(s))
	}
	for v, k := range dep.Coupons {
		if v < 0 || v >= p.Users() {
			return nil, fmt.Errorf("s3crm: coupon user %d out of range", v)
		}
		if k < 0 {
			return nil, fmt.Errorf("s3crm: negative coupon count for user %d", v)
		}
		if deg := p.inst.G.OutDegree(int32(v)); k > deg {
			return nil, fmt.Errorf("s3crm: user %d allocated %d coupons but has %d friends", v, k, deg)
		}
		d.SetK(int32(v), k)
	}
	return resultFromDeployment("custom", p, d, opts)
}

// AdoptionCaseStudy re-weights the problem's network with the coupon
// adoption model of [30] for a real policy (Airbnb or Booking.com —
// see Policies) and sets uniform coupon costs and gross-margin benefits,
// mirroring the paper's Section VI-C case study.
func (p *Problem) AdoptionCaseStudy(policy string, grossMarginPct float64, seed uint64) (*Problem, error) {
	var pol costmodel.Policy
	switch policy {
	case "Airbnb":
		pol = costmodel.Airbnb
	case "Booking.com":
		pol = costmodel.Booking
	default:
		return nil, fmt.Errorf("s3crm: unknown policy %q (want Airbnb or Booking.com)", policy)
	}
	src := rng.New(seed)
	adoption, err := costmodel.AdoptionProbs(p.Users(), pol.SCCost, src)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	g, err := costmodel.ApplyAdoption(p.inst.G, adoption)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	benefit, err := costmodel.GrossMarginBenefit(pol.SCCost, grossMarginPct)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	n := p.Users()
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  make([]float64, n),
		SeedCost: append([]float64(nil), p.inst.SeedCost...),
		SCCost:   make([]float64, n),
		Budget:   p.inst.Budget,
	}
	for i := 0; i < n; i++ {
		inst.Benefit[i] = benefit
		inst.SCCost[i] = pol.SCCost
	}
	return &Problem{inst: inst}, nil
}

// Policies lists the case-study coupon policies.
func Policies() []string { return []string{"Airbnb", "Booking.com"} }

// SaveScenario writes the problem as portable JSON, loadable with
// LoadScenario.
func (p *Problem) SaveScenario(w io.Writer) error {
	s := &gio.Scenario{
		Nodes:    p.inst.G.NumNodes(),
		Edges:    p.inst.G.Edges(),
		Benefit:  p.inst.Benefit,
		SeedCost: p.inst.SeedCost,
		SCCost:   p.inst.SCCost,
		Budget:   p.inst.Budget,
	}
	if err := gio.WriteScenario(w, s); err != nil {
		return fmt.Errorf("s3crm: %w", err)
	}
	return nil
}

// LoadScenario reads a problem saved with SaveScenario.
func LoadScenario(r io.Reader) (*Problem, error) {
	s, err := gio.ReadScenario(r)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	g, err := s.Graph()
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  s.Benefit,
		SeedCost: s.SeedCost,
		SCCost:   s.SCCost,
		Budget:   s.Budget,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}
