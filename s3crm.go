// Package s3crm is a Go implementation of Seed Selection and Social Coupon
// allocation for Redemption Maximization (S3CRM) in online social networks,
// reproducing Chang, Shi, Yang and Chen (ICDE 2019, arXiv:1902.07432).
//
// Social-coupon campaigns (Dropbox referrals, Airbnb travel credits,
// Booking.com invites) reward users for recruiting friends, but each user
// can redeem only a limited number of coupons. Given a social network with
// per-user benefit, seed cost and coupon cost, the S3CRM problem selects a
// seed set and a coupon allocation that maximize the redemption rate — the
// expected benefit of activated users per unit of invested budget — subject
// to an investment budget.
//
// # Problems and campaigns
//
// ProblemBuilder / Problem define an instance (graph, costs, budget);
// GenerateDataset builds synthetic instances mirroring the paper's Table II
// dataset profiles (Facebook, Epinions, Google+, Douban); LoadGraphProblem
// streams a real SNAP edge list — plain or gzip — into a ready-to-solve
// problem (see GraphConfig for the probability models and cost parameters):
//
//	problem, stats, err := s3crm.LoadGraphProblem("soc-Epinions1.txt.gz",
//	        s3crm.GraphConfig{Budget: 5000})
//
// The serving surface is the Campaign session: Problem.NewCampaign
// constructs the evaluation engine, the diffusion substrate and the scratch
// pools once, and then serves any number of concurrent calls against the
// shared state —
//
//	c, err := problem.NewCampaign(s3crm.WithEngine("worldcache"),
//	        s3crm.WithSamples(1000), s3crm.WithSeed(42))
//	r, err := c.Solve(ctx)                  // the paper's S3CA algorithm
//	r, err = c.RunBaseline(ctx, "IM-U")     // IM-U/IM-L/PM-U/PM-L/IM-S
//	r, err = c.Evaluate(ctx, dep)           // one hand-built deployment
//	rs, err := c.EvaluateBatch(ctx, deps)   // many, on shared samples
//
// Campaign calls accept call-level options (per-request engine selection,
// seeds, progress sinks), honour context cancellation mid-iteration, and
// stream per-iteration progress events through WithProgress. The one-shot
// package-level Solve, RunBaseline and Problem.Evaluate remain as
// deprecated thin wrappers, each building a throwaway Campaign.
//
// # Engines
//
// Every call evaluates deployments through an engine selected with
// WithEngine: "mc" (plain Monte Carlo, the default), "worldcache"
// (incremental world-cache evaluation — the solver's greedy loops replay
// only the simulation state a candidate change can affect, typically
// several times faster at the paper's 1000-sample setting), "sketch"
// (reverse-influence-sampling candidate pruning for the baselines — a
// pruner, not a solver), or "ssr" (the SSR sketch solver: S3CA's
// seed/coupon selection runs against reverse-sample cover counts and an
// adaptive stopping rule certifies a (1−1/e−ε) approximation of the sketch
// objective with probability 1−δ, tuned by WithEpsilon and WithDelta; only
// the final deployment is forward-measured). WithEngine("auto") defers the
// choice to instance size: ssr at or above 200k users / 2M edges, worldcache
// below — the crossover where reverse sampling overtakes forward world
// replay in the benchmark suite. All engines agree on reported
// metrics within Monte-Carlo noise, and every
// engine serves both triggering models — WithModel("ic"), the default
// independent cascade, or WithModel("lt"), linear threshold via its
// live-edge equivalence; see DESIGN.md ("Evaluation engines", "Triggering
// models" and "Serving API") for the architecture.
//
// See the examples directory for runnable walkthroughs, cmd/s3crmd for the
// HTTP serving layer and EXPERIMENTS.md for the paper-reproduction results.
package s3crm

import (
	"context"
	"fmt"
	"io"

	"s3crm/internal/costmodel"
	"s3crm/internal/diffusion"
	"s3crm/internal/eval"
	"s3crm/internal/gen"
	"s3crm/internal/gio"
	"s3crm/internal/graph"
	"s3crm/internal/rng"
)

// ProblemBuilder assembles an S3CRM instance.
type ProblemBuilder struct {
	n        int
	edges    []graph.Edge
	benefit  []float64
	seedCost []float64
	scCost   []float64
	budget   float64
	err      error
}

// NewProblem starts a builder for a network of n users (ids 0..n-1). Users
// default to benefit 1, seed cost 1 and coupon cost 1.
func NewProblem(n int) *ProblemBuilder {
	b := &ProblemBuilder{
		n:        n,
		benefit:  make([]float64, n),
		seedCost: make([]float64, n),
		scCost:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.benefit[i], b.seedCost[i], b.scCost[i] = 1, 1, 1
	}
	return b
}

// checkUser validates a user id against the network size — the single
// range check shared by the builder and deployment validation. The message
// carries no package prefix; call sites wrap it with their own context and
// a single "s3crm: " prefix.
func checkUser(id, n int) error {
	if id < 0 || id >= n {
		return fmt.Errorf("user %d out of range [0,%d)", id, n)
	}
	return nil
}

// AddEdge records a directed influence edge with probability p.
func (b *ProblemBuilder) AddEdge(from, to int, p float64) *ProblemBuilder {
	if b.err != nil {
		return b
	}
	if err := checkUser(from, b.n); err != nil {
		b.err = fmt.Errorf("s3crm: edge (%d,%d): %w", from, to, err)
		return b
	}
	if err := checkUser(to, b.n); err != nil {
		b.err = fmt.Errorf("s3crm: edge (%d,%d): %w", from, to, err)
		return b
	}
	b.edges = append(b.edges, graph.Edge{From: int32(from), To: int32(to), P: p})
	return b
}

// SetUser sets one user's benefit, seed cost and coupon cost.
func (b *ProblemBuilder) SetUser(id int, benefit, seedCost, scCost float64) *ProblemBuilder {
	if b.err != nil {
		return b
	}
	if err := checkUser(id, b.n); err != nil {
		b.err = fmt.Errorf("s3crm: %w", err)
		return b
	}
	b.benefit[id] = benefit
	b.seedCost[id] = seedCost
	b.scCost[id] = scCost
	return b
}

// Budget sets the investment budget Binv.
func (b *ProblemBuilder) Budget(budget float64) *ProblemBuilder {
	b.budget = budget
	return b
}

// Build validates and returns the problem.
func (b *ProblemBuilder) Build() (*Problem, error) {
	if b.err != nil {
		return nil, b.err
	}
	g, err := graph.FromEdges(b.n, b.edges)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  b.benefit,
		SeedCost: b.seedCost,
		SCCost:   b.scCost,
		Budget:   b.budget,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}

// Problem is an immutable S3CRM instance. It is safe for concurrent use;
// any number of Campaigns may serve it at once.
type Problem struct {
	inst *diffusion.Instance
}

// Users returns the number of users.
func (p *Problem) Users() int { return p.inst.G.NumNodes() }

// Edges returns the number of influence edges.
func (p *Problem) Edges() int { return p.inst.G.NumEdges() }

// Budget returns the investment budget.
func (p *Problem) Budget() float64 { return p.inst.Budget }

// GenerateDataset builds a synthetic instance mirroring one of the paper's
// Table II dataset profiles ("Facebook", "Epinions", "Google+", "Douban"),
// scaled down by the given divisor (1 keeps the published size; see
// DESIGN.md on why the datasets are synthetic). Generation and cost
// assignment are deterministic in seed.
func GenerateDataset(name string, scale int, seed uint64) (*Problem, error) {
	preset, err := gen.PresetByName(name)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst, err := eval.BuildInstance(eval.Setup{Preset: preset, Scale: scale, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}

// GraphConfig configures LoadGraphProblem: how an external edge list is
// ingested and how per-user benefits and costs are drawn for it.
type GraphConfig struct {
	// Model assigns edge influence probabilities: "file" (the edge list's
	// third column), "uniform" (constant UniformP), "wc" (the paper's
	// weighted cascade, 1/in-degree) or "trivalency" (hash-pick from
	// 0.1/0.01/0.001). "" means "file" when the list has a probability
	// column and "wc" otherwise.
	Model string
	// UniformP is the "uniform" model's probability (default 0.1).
	UniformP float64
	// Mu and Sigma parameterize the benefit distribution N(Mu, Sigma)
	// (defaults 10 and 2, the experiment harness's setting).
	Mu, Sigma float64
	// Lambda and Kappa are the paper's cost-calibration ratios
	// (0 means the paper defaults λ=1, κ=10).
	Lambda, Kappa float64
	// Budget is the investment budget Binv; required.
	Budget float64
	// Seed drives cost assignment and the trivalency hash (default 1).
	Seed uint64
	// KeepSelfLoops retains u→u arcs; by default they are dropped.
	KeepSelfLoops bool
	// StrictDuplicates rejects repeated arcs instead of keeping the first.
	StrictDuplicates bool
	// NormalizeLT scales each user's in-weights down to sum to at most 1
	// after probability assignment — the linear-threshold live-edge
	// precondition (see WithModel). The weighted-cascade model satisfies
	// the bound by construction and passes through unchanged; uniform,
	// trivalency and file weightings may need it before solving with
	// WithModel("lt").
	NormalizeLT bool
}

// GraphStats reports what LoadGraphProblem's streaming ingestion saw.
type GraphStats struct {
	Nodes      int    // distinct users after dense re-mapping
	Edges      int    // influence edges in the final graph
	SelfLoops  int64  // u→u arcs dropped
	Duplicates int64  // repeated arcs dropped
	Model      string // probability model actually applied
}

// LoadGraphProblem streams a SNAP-style edge list — plain or gzip — into a
// ready-to-solve problem: node ids are densely re-mapped, self-loops and
// duplicate arcs resolved, influence probabilities assigned per cfg.Model,
// and per-user benefits and costs drawn from the paper's cost model
// (Section VI-A). The graph goes straight from the file into compressed
// sparse rows; no intermediate edge array is materialized, so ingestion of
// a million-node network peaks near the size of the final representation.
func LoadGraphProblem(path string, cfg GraphConfig) (*Problem, GraphStats, error) {
	if cfg.Budget <= 0 {
		return nil, GraphStats{}, fmt.Errorf("s3crm: graph problems need a positive Budget, got %v", cfg.Budget)
	}
	if cfg.Mu == 0 {
		cfg.Mu = 10
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	model := cfg.Model
	auto := model == ""
	if auto {
		model = gio.ModelFile
	}
	lo := gio.LoadOptions{
		Model:         model,
		UniformP:      cfg.UniformP,
		Seed:          cfg.Seed,
		KeepSelfLoops: cfg.KeepSelfLoops,
		NormalizeLT:   cfg.NormalizeLT,
	}
	if cfg.StrictDuplicates {
		lo.Duplicates = graph.DupError
	}
	g, ls, err := gio.LoadEdgeListFile(path, lo)
	if err != nil {
		return nil, GraphStats{}, fmt.Errorf("s3crm: %w", err)
	}
	if auto && !ls.HasProbColumn {
		// No probability column anywhere: fall back to the paper's standard
		// 1/in-degree weighting (which satisfies the LT in-weight bound by
		// construction, so NormalizeLT has nothing left to do).
		model = gio.ModelWeightedCascade
		g = g.WeightByInDegree()
	}
	stats := GraphStats{
		Nodes: ls.Nodes, Edges: ls.Edges,
		SelfLoops: ls.SelfLoops, Duplicates: ls.Duplicates,
		Model: model,
	}
	m, err := costmodel.Assign(g, costmodel.Params{
		Mu: cfg.Mu, Sigma: cfg.Sigma, Lambda: cfg.Lambda, Kappa: cfg.Kappa,
	}, rng.New(cfg.Seed))
	if err != nil {
		return nil, stats, fmt.Errorf("s3crm: %w", err)
	}
	inst := &diffusion.Instance{
		G: g, Benefit: m.Benefit, SeedCost: m.SeedCost, SCCost: m.SCCost,
		Budget: cfg.Budget,
	}
	if err := inst.Validate(); err != nil {
		return nil, stats, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, stats, nil
}

// GraphModels lists the probability models accepted by GraphConfig.Model.
func GraphModels() []string { return gio.Models() }

// DatasetNames lists the generatable dataset profiles.
func DatasetNames() []string {
	names := make([]string, 0, 4)
	for _, p := range gen.Presets() {
		names = append(names, p.Name)
	}
	return names
}

// Result reports a solved or evaluated deployment.
type Result struct {
	Algorithm      string
	Seeds          []int       // selected seed users, ascending
	Coupons        map[int]int // coupon allocation K for users holding any
	RedemptionRate float64     // the S3CRM objective
	Benefit        float64     // expected benefit of activated users
	SeedCost       float64
	CouponCost     float64
	TotalCost      float64
	FarthestHop    float64 // average maximum hop distance from the seeds
	ExploredRatio  float64 // fraction of the network examined (S3CA only)

	// EffectiveSamples is the number of Monte-Carlo worlds the reported
	// metrics were estimated over. It equals the requested sample count
	// unless the call was downgraded by a degradation hook (see
	// WithDegradation), in which case Degraded is set and EffectiveSamples
	// records what the estimate actually used.
	EffectiveSamples int `json:"effective_samples"`
	// StdErr is the Monte-Carlo standard error of RedemptionRate, computed
	// from the per-world benefit variance over EffectiveSamples worlds (the
	// deployment's costs are deterministic, so the redemption-rate error is
	// the benefit error divided by total cost). A degraded response's wider
	// error bar is the precision the caller traded for latency.
	StdErr float64 `json:"stderr"`
	// Degraded reports that the call was downgraded to fewer samples than
	// requested by the campaign's degradation hook (graceful degradation
	// under serving overload; see WithDegradation and cmd/s3crmd).
	Degraded bool `json:"degraded"`

	// SketchWorkers and SketchBuildNs instrument the SSR engine's sample
	// build: the worker cap the sharded extension ran under and the
	// nanoseconds it spent drawing or patching samples. SketchReused and
	// SketchRedrawn report a warm re-solve's sample economy (Campaign.Resolve
	// under the ssr engine): how many pooled samples survived the churn
	// watermark check and how many had to be re-drawn. All four are zero —
	// and absent from the JSON encoding — for other engines.
	SketchWorkers int   `json:"sketch_workers,omitempty"`
	SketchBuildNs int64 `json:"sketch_build_ns,omitempty"`
	SketchReused  int   `json:"sketch_reused,omitempty"`
	SketchRedrawn int   `json:"sketch_redrawn,omitempty"`
}

// Baselines lists the algorithm names accepted by RunBaseline.
func Baselines() []string { return []string{"IM-U", "IM-L", "PM-U", "PM-L", "IM-S"} }

// Engines lists the evaluation engines accepted by WithEngine.
func Engines() []string { return diffusion.Engines() }

// EngineUsage is a one-line synopsis of the engines Engines lists, shared by
// the CLIs' flag help and the daemon's /info payload.
func EngineUsage() string { return diffusion.EngineUsage() }

// Models lists the triggering models accepted by WithModel: "ic"
// (independent cascade, the default) and "lt" (linear threshold via its
// live-edge equivalence). Every engine and diffusion substrate serves both.
func Models() []string { return diffusion.Models() }

// Diffusions lists the edge-liveness substrates accepted by WithDiffusion.
func Diffusions() []string { return diffusion.Diffusions() }

// EvalModes lists the world-evaluation kernels accepted by WithEvalMode:
// "bitparallel" (the default — 64 possible worlds per machine word) and
// "scalar" (one world per pass, the parity oracle). Both produce
// bit-identical results.
func EvalModes() []string { return diffusion.EvalModes() }

// Deployment is a hand-built campaign plan for Evaluate: the seed set and
// the coupon allocation.
type Deployment struct {
	Seeds   []int
	Coupons map[int]int
}

// buildDeployment validates a public deployment against the problem and
// converts it to the internal representation.
func (p *Problem) buildDeployment(dep Deployment) (*diffusion.Deployment, error) {
	return buildDeploymentFor(p.inst, dep)
}

// buildDeploymentFor validates a public deployment against one graph view —
// a campaign call validates against the view its engines resolved, which may
// be ahead of the problem's original instance after ApplyEdges.
func buildDeploymentFor(inst *diffusion.Instance, dep Deployment) (*diffusion.Deployment, error) {
	n := inst.G.NumNodes()
	d := diffusion.NewDeployment(n)
	for _, s := range dep.Seeds {
		if err := checkUser(s, n); err != nil {
			return nil, fmt.Errorf("s3crm: seed: %w", err)
		}
		d.AddSeed(int32(s))
	}
	for v, k := range dep.Coupons {
		if err := checkUser(v, n); err != nil {
			return nil, fmt.Errorf("s3crm: coupon: %w", err)
		}
		if k < 0 {
			return nil, fmt.Errorf("s3crm: negative coupon count for user %d", v)
		}
		if deg := inst.G.OutDegree(int32(v)); k > deg {
			return nil, fmt.Errorf("s3crm: user %d allocated %d coupons but has %d friends", v, k, deg)
		}
		d.SetK(int32(v), k)
	}
	return d, nil
}

// Solve runs S3CA, the paper's approximation algorithm, on the problem.
//
// Deprecated: build a Campaign with Problem.NewCampaign and call
// Campaign.Solve — it amortizes engine construction across calls and
// supports cancellation, progress streaming and batch evaluation. This
// wrapper builds a throwaway Campaign per call.
func Solve(p *Problem, opts Options) (*Result, error) {
	c, err := p.NewCampaign(opts.asOptions()...)
	if err != nil {
		return nil, err
	}
	return c.Solve(context.Background(), WithSeed(opts.Seed))
}

// RunBaseline runs one of the paper's comparison algorithms.
//
// Deprecated: build a Campaign with Problem.NewCampaign and call
// Campaign.RunBaseline (see the Solve deprecation note).
func RunBaseline(name string, p *Problem, opts Options) (*Result, error) {
	c, err := p.NewCampaign(opts.asOptions()...)
	if err != nil {
		return nil, err
	}
	return c.RunBaseline(context.Background(), name, WithSeed(opts.Seed))
}

// Evaluate measures an arbitrary deployment: the expected benefit, the
// closed-form coupon cost, the redemption rate and hop statistics.
//
// Deprecated: build a Campaign with Problem.NewCampaign and call
// Campaign.Evaluate or Campaign.EvaluateBatch (see the Solve deprecation
// note).
func (p *Problem) Evaluate(dep Deployment, opts Options) (*Result, error) {
	c, err := p.NewCampaign(opts.asOptions()...)
	if err != nil {
		return nil, err
	}
	return c.Evaluate(context.Background(), dep, WithSeed(opts.Seed))
}

// AdoptionCaseStudy re-weights the problem's network with the coupon
// adoption model of [30] for a real policy (Airbnb or Booking.com —
// see Policies) and sets uniform coupon costs and gross-margin benefits,
// mirroring the paper's Section VI-C case study.
func (p *Problem) AdoptionCaseStudy(policy string, grossMarginPct float64, seed uint64) (*Problem, error) {
	var pol costmodel.Policy
	switch policy {
	case "Airbnb":
		pol = costmodel.Airbnb
	case "Booking.com":
		pol = costmodel.Booking
	default:
		return nil, fmt.Errorf("s3crm: unknown policy %q (want Airbnb or Booking.com)", policy)
	}
	src := rng.New(seed)
	adoption, err := costmodel.AdoptionProbs(p.Users(), pol.SCCost, src)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	g, err := costmodel.ApplyAdoption(p.inst.G, adoption)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	benefit, err := costmodel.GrossMarginBenefit(pol.SCCost, grossMarginPct)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	n := p.Users()
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  make([]float64, n),
		SeedCost: append([]float64(nil), p.inst.SeedCost...),
		SCCost:   make([]float64, n),
		Budget:   p.inst.Budget,
	}
	for i := 0; i < n; i++ {
		inst.Benefit[i] = benefit
		inst.SCCost[i] = pol.SCCost
	}
	return &Problem{inst: inst}, nil
}

// Policies lists the case-study coupon policies.
func Policies() []string { return []string{"Airbnb", "Booking.com"} }

// SaveScenario writes the problem as portable JSON, loadable with
// LoadScenario.
func (p *Problem) SaveScenario(w io.Writer) error {
	s := &gio.Scenario{
		Nodes:    p.inst.G.NumNodes(),
		Edges:    p.inst.G.Edges(),
		Benefit:  p.inst.Benefit,
		SeedCost: p.inst.SeedCost,
		SCCost:   p.inst.SCCost,
		Budget:   p.inst.Budget,
	}
	if err := gio.WriteScenario(w, s); err != nil {
		return fmt.Errorf("s3crm: %w", err)
	}
	return nil
}

// LoadScenario reads a problem saved with SaveScenario.
func LoadScenario(r io.Reader) (*Problem, error) {
	s, err := gio.ReadScenario(r)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	g, err := s.Graph()
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	inst := &diffusion.Instance{
		G:        g,
		Benefit:  s.Benefit,
		SeedCost: s.SeedCost,
		SCCost:   s.SCCost,
		Budget:   s.Budget,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	return &Problem{inst: inst}, nil
}
