// End-to-end triggering-model tests: WithModel("lt") must serve every
// engine and substrate through the public Campaign surface, with the same
// agreement guarantees the IC engines enjoy.
package s3crm

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestModelLTEndToEnd solves the parity problem under the linear-threshold
// model across every engine × substrate cell: substrates must agree bit for
// bit per engine (they read the same per-world selections), full
// evaluations must agree across engines exactly, and S3CA's world-cache
// guidance stays within Monte-Carlo tolerance of the MC reference — the
// same contract the IC matrix pins.
func TestModelLTEndToEnd(t *testing.T) {
	p := parityProblem(t)
	ctx := context.Background()
	algos := []string{"S3CA", "IM-U", "PM-L"}
	for _, algo := range algos {
		t.Run(algo, func(t *testing.T) {
			rates := map[string]float64{}
			var mcRate float64
			for _, engine := range Engines() {
				var perDiffusion []float64
				for _, diff := range Diffusions() {
					c, err := p.NewCampaign(
						WithModel("lt"), WithEngine(engine), WithDiffusion(diff),
						WithSamples(300), WithSeed(7))
					if err != nil {
						t.Fatal(err)
					}
					var r *Result
					if algo == "S3CA" {
						r, err = c.Solve(ctx, WithSeed(7))
					} else {
						r, err = c.RunBaseline(ctx, algo, WithSeed(7))
					}
					if err != nil {
						t.Fatalf("%s under %s/%s: %v", algo, engine, diff, err)
					}
					if r.RedemptionRate <= 0 {
						t.Fatalf("%s under %s/%s: non-positive redemption rate", algo, engine, diff)
					}
					perDiffusion = append(perDiffusion, r.RedemptionRate)
				}
				if perDiffusion[0] != perDiffusion[1] {
					t.Errorf("%s under %s: liveedge rate %v != hash rate %v",
						algo, engine, perDiffusion[0], perDiffusion[1])
				}
				rates[engine] = perDiffusion[0]
				if engine == "mc" {
					mcRate = perDiffusion[0]
				}
			}
			for engine, rate := range rates {
				tol := 1e-9
				if algo == "S3CA" && (engine == "worldcache" || engine == "ssr") {
					tol = 0.15 * mcRate
				}
				if math.Abs(rate-mcRate) > tol {
					t.Errorf("%s: engine %s LT rate %v differs from mc %v (tol %v)",
						algo, engine, rate, mcRate, tol)
				}
			}
		})
	}
}

// TestModelLTDiffersFromIC guards against the model option silently falling
// through to IC: on the parity problem the two models must measure a fixed
// deployment differently (the LT selection redistributes liveness mass).
func TestModelLTDiffersFromIC(t *testing.T) {
	p := parityProblem(t)
	ctx := context.Background()
	dep := Deployment{Seeds: []int{0}, Coupons: map[int]int{0: 2, 1: 1}}
	measure := func(model string) float64 {
		c, err := p.NewCampaign(WithModel(model), WithSamples(2000), WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Evaluate(ctx, dep, WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		return r.Benefit
	}
	ic, lt := measure("ic"), measure("lt")
	if ic == lt {
		t.Fatalf("IC and LT measured the deployment identically (%v): the model seam is inert", ic)
	}
}

// TestModelLTPinnedReplayDeterminism: a pinned-seed LT solve must be
// reproducible call over call and across warm campaign reuse, like the IC
// serving guarantees.
func TestModelLTPinnedReplayDeterminism(t *testing.T) {
	p := parityProblem(t)
	ctx := context.Background()
	c, err := p.NewCampaign(WithModel("lt"), WithEngine("worldcache"),
		WithSamples(200), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Solve(ctx, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Solve(ctx, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if first.RedemptionRate != again.RedemptionRate || first.Benefit != again.Benefit {
		t.Fatalf("warm LT replay drifted: %v vs %v", first, again)
	}
	oneShot, err := Solve(p, Options{Model: "lt", Engine: "worldcache", Samples: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.RedemptionRate != first.RedemptionRate {
		t.Fatalf("one-shot LT solve %v differs from pinned campaign call %v",
			oneShot.RedemptionRate, first.RedemptionRate)
	}
}

// TestWithModelValidation: the option layer rejects unknown models eagerly
// with the shared "want one of" shape, and NewCampaign surfaces the LT
// precondition violation at construction.
func TestWithModelValidation(t *testing.T) {
	p := parityProblem(t)
	if _, err := p.NewCampaign(WithModel("voter")); err == nil ||
		!strings.Contains(err.Error(), "want one of") {
		t.Fatalf("WithModel(\"voter\"): %v", err)
	}
	// In-weights over the LT bound fail at NewCampaign, not mid-solve.
	over, err := NewProblem(3).
		AddEdge(0, 2, 0.8).AddEdge(1, 2, 0.7).
		Budget(10).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := over.NewCampaign(WithModel("lt")); err == nil ||
		!strings.Contains(err.Error(), "in-weights") {
		t.Fatalf("NewCampaign accepted LT on overweight instance: %v", err)
	}
}
