// Benchmarks regenerating every table and figure of the paper at reduced
// scale. Each benchmark runs the corresponding experiment driver and logs
// the same rows the paper reports (-v to see them); cmd/experiments runs
// the full-scale versions. Ablation benchmarks isolate the design choices
// called out in DESIGN.md.
package s3crm

import (
	"context"
	"runtime"
	"testing"

	"s3crm/internal/core"
	"s3crm/internal/costmodel"
	"s3crm/internal/diffusion"
	"s3crm/internal/eval"
	"s3crm/internal/gen"
	"s3crm/internal/rng"
)

// benchSetup is a Facebook-like instance small enough for -bench runs.
func benchSetup() eval.Setup {
	return eval.Setup{Preset: gen.Facebook, Scale: 20, Seed: 77} // 200 users
}

func benchParams() eval.RunParams {
	return eval.RunParams{Samples: 100, Seed: 77, CandidateCap: 30}
}

func benchBudgets() []float64 {
	b := gen.Facebook.Scaled(20).Binv
	return []float64{0.6 * b, b, 1.4 * b}
}

func BenchmarkTable2PresetStatistics(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = eval.PresetStatistics()
	}
	b.Log("\n" + out)
}

func BenchmarkFig6InvestmentEfficiency(b *testing.B) {
	var pts []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.BudgetSweep(benchSetup(), benchBudgets(), eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Measures[len(last.Measures)-1].Redemption, "s3ca-redemption")
	b.Log("\n" + eval.RenderSweep("Fig 6(a) — redemption vs Binv", "Binv", pts, eval.Redemption))
	b.Log("\n" + eval.RenderSweep("Fig 6(b) — benefit vs Binv", "Binv", pts, eval.Benefit))
}

func BenchmarkFig6LambdaSweep(b *testing.B) {
	var pts []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.LambdaSweep(benchSetup(), []float64{0.5, 1, 2, 4}, eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderSweep("Fig 6(c,d) — redemption vs λ", "lambda", pts, eval.Redemption))
}

func BenchmarkFig6RunningTime(b *testing.B) {
	var pts []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.BudgetSweep(benchSetup(), benchBudgets(), eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderSweep("Fig 6(e,f) — running time vs Binv (seconds)", "Binv", pts, eval.Runtime))
}

func BenchmarkFig7SeedSCRate(b *testing.B) {
	var budgetPts, kappaPts []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		budgetPts, err = eval.BudgetSweep(benchSetup(), benchBudgets(), eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		kappaPts, err = eval.KappaSweep(benchSetup(), []float64{5, 10, 20}, eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderSweep("Fig 7(a,b) — seed–SC rate vs Binv", "Binv", budgetPts, eval.SeedSCRate))
	b.Log("\n" + eval.RenderSweep("Fig 7(e,f) — seed–SC rate vs κ", "kappa", kappaPts, eval.SeedSCRate))
}

func BenchmarkFig7LambdaSeedSCRate(b *testing.B) {
	var pts []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = eval.LambdaSweep(benchSetup(), []float64{0.5, 1, 2, 4}, eval.Algorithms, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderSweep("Fig 7(c,d) — seed–SC rate vs λ", "lambda", pts, eval.SeedSCRate))
}

func BenchmarkFig8CaseStudy(b *testing.B) {
	algos := []string{"S3CA", "PM-L", "IM-L"}
	var airbnb, booking []eval.Point
	var err error
	for i := 0; i < b.N; i++ {
		airbnb, err = eval.CaseStudy(benchSetup(), costmodel.Airbnb, []float64{20, 50, 80}, algos, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		booking, err = eval.CaseStudy(benchSetup(), costmodel.Booking, []float64{20, 50, 80}, algos, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderSweep("Fig 8(a) — redemption vs margin (Airbnb)", "margin%", airbnb, eval.Redemption))
	b.Log("\n" + eval.RenderSweep("Fig 8(b) — seed–SC rate vs margin (Airbnb)", "margin%", airbnb, eval.SeedSCRate))
	b.Log("\n" + eval.RenderSweep("Fig 8(c) — redemption vs margin (Booking)", "margin%", booking, eval.Redemption))
	b.Log("\n" + eval.RenderSweep("Fig 8(d) — seed–SC rate vs margin (Booking)", "margin%", booking, eval.SeedSCRate))
}

func BenchmarkFig9Scalability(b *testing.B) {
	cfg := eval.ScalabilityConfig{Seed: 77}
	var bySize, byBudget []eval.ScaleRow
	var err error
	for i := 0; i < b.N; i++ {
		bySize, err = eval.ScalabilityBySize(cfg, []int{100, 200, 400}, 50, benchParams())
		if err != nil {
			b.Fatal(err)
		}
		byBudget, err = eval.ScalabilityByBudget(cfg, 200, []float64{25, 50, 100}, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + eval.RenderScale("Fig 9(a,b) — vs network size", bySize))
	b.Log("\n" + eval.RenderScale("Fig 9(c,d) — vs budget", byBudget))
}

func BenchmarkFig10Approximation(b *testing.B) {
	var rows []eval.ApproxRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = eval.Approximation(eval.ScalabilityConfig{Seed: 77}, 10,
			[]float64{20, 50, 80}, eval.RunParams{Samples: 500, Seed: 77})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.S3CA < r.WorstCase {
			b.Fatalf("S3CA %v fell below the worst-case bound %v", r.S3CA, r.WorstCase)
		}
	}
	b.Log("\n" + eval.RenderApprox("Fig 10 — S3CA vs OPT vs worst-case", rows))
}

func BenchmarkTable3FarthestHops(b *testing.B) {
	setups := []eval.Setup{
		{Preset: gen.Facebook, Scale: 20, Seed: 77},
		{Preset: gen.Epinions, Scale: 400, Seed: 77},
	}
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = eval.FarthestHops(setups, []string{"IM-U", "IM-L", "PM-U", "PM-L", "S3CA"}, benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

func BenchmarkTable4RunningTime(b *testing.B) {
	var out string
	var err error
	for i := 0; i < b.N; i++ {
		out, err = eval.RunningTime(benchSetup(), benchBudgets(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + out)
}

// --- Ablations (DESIGN.md) ---

func ablationInstance(b *testing.B) *diffusion.Instance {
	b.Helper()
	inst, err := eval.BuildInstance(benchSetup())
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func runAblation(b *testing.B, opts core.Options) float64 {
	inst := ablationInstance(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(inst, opts)
		if err != nil {
			b.Fatal(err)
		}
		rate = sol.RedemptionRate
	}
	b.ReportMetric(rate, "redemption")
	return rate
}

func BenchmarkAblationFullS3CA(b *testing.B) {
	runAblation(b, core.Options{Samples: 100, Seed: 77})
}

func BenchmarkAblationIDOnly(b *testing.B) {
	// No GPI/SCM: how much do the maneuver phases contribute?
	runAblation(b, core.Options{Samples: 100, Seed: 77, DisableGPI: true})
}

func BenchmarkAblationNoSCM(b *testing.B) {
	// GPI runs but coupons are never maneuvered.
	runAblation(b, core.Options{Samples: 100, Seed: 77, DisableSCM: true})
}

func BenchmarkAblationNoPivot(b *testing.B) {
	// The investment trade-off machinery off: SCs always win over seeds.
	runAblation(b, core.Options{Samples: 100, Seed: 77, DisablePivot: true})
}

func BenchmarkAblationSampleCount(b *testing.B) {
	// Estimator accuracy vs time: the paper's ε.
	for _, samples := range []int{50, 200, 800} {
		b.Run(benchName(samples), func(b *testing.B) {
			runAblation(b, core.Options{Samples: samples, Seed: 77})
		})
	}
}

func benchName(samples int) string {
	switch samples {
	case 50:
		return "samples=50"
	case 200:
		return "samples=200"
	default:
		return "samples=800"
	}
}

// --- Engine comparison (the world-cache acceptance benchmarks) ---

// engineBenchInstance is the Epinions-profile instance the engine
// benchmarks run at the paper's 1000-sample setting.
func engineBenchInstance(b *testing.B) *diffusion.Instance {
	b.Helper()
	inst, err := eval.BuildInstance(eval.Setup{Preset: gen.Epinions, Scale: 400, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

func benchSolveEngines(b *testing.B, opts core.Options) {
	variants := []struct {
		name string
		opts func(core.Options) core.Options
	}{
		// Current defaults: CELF-lazy ID loop over materialized live-edge
		// worlds.
		{"engine=" + diffusion.EngineMC, func(o core.Options) core.Options {
			o.Engine = diffusion.EngineMC
			return o
		}},
		{"engine=" + diffusion.EngineWorldCache, func(o core.Options) core.Options {
			o.Engine = diffusion.EngineWorldCache
			return o
		}},
		// The PR 1 world-cache configuration — exhaustive candidate sweep,
		// hashed coin probes — kept as the acceptance baseline the lazy
		// loop and the live-edge substrate are measured against.
		{"engine=" + diffusion.EngineWorldCache + "-pr1", func(o core.Options) core.Options {
			o.Engine = diffusion.EngineWorldCache
			o.ExhaustiveID = true
			o.Diffusion = diffusion.DiffusionHash
			return o
		}},
		// Scalar-kernel variants of the two engines: the default names
		// above run bit-parallel (64 worlds per machine word), these pin
		// the one-world-per-pass oracle so the kernel speedup stays
		// measurable PR over PR. Redemption must match the default
		// variants exactly — the kernels are bit-identical.
		{"engine=" + diffusion.EngineMC + "-scalar", func(o core.Options) core.Options {
			o.Engine = diffusion.EngineMC
			o.EvalMode = diffusion.EvalScalar
			return o
		}},
		{"engine=" + diffusion.EngineWorldCache + "-scalar", func(o core.Options) core.Options {
			o.Engine = diffusion.EngineWorldCache
			o.EvalMode = diffusion.EvalScalar
			return o
		}},
		// The SSR sketch solver: selection runs on reverse-sample cover
		// counts under the adaptive stopping rule instead of forward
		// simulation, so Samples only sizes the final measurement.
		{"engine=" + diffusion.EngineSSR, func(o core.Options) core.Options {
			o.Engine = diffusion.EngineSSR
			return o
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			inst := engineBenchInstance(b)
			o := v.opts(opts)
			var stats core.Stats
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(inst, o)
				if err != nil {
					b.Fatal(err)
				}
				rate = sol.RedemptionRate
				stats = sol.Stats
			}
			b.ReportMetric(rate, "redemption")
			b.ReportMetric(float64(stats.Evaluations), "evals")
			b.ReportMetric(float64(stats.CandidateEvals), "candevals")
		})
	}
}

// BenchmarkIDLoop isolates phases 1–2 (the greedy investment loop), the
// dominant cost the world-cache engine turns from O(candidates ×
// full-simulation) into O(candidates × delta).
func BenchmarkIDLoop(b *testing.B) {
	benchSolveEngines(b, core.Options{Samples: 1000, Seed: 77, DisableGPI: true})
}

// BenchmarkSolve runs the full S3CA pipeline under both engines.
func BenchmarkSolve(b *testing.B) {
	benchSolveEngines(b, core.Options{Samples: 1000, Seed: 77})
}

// BenchmarkSolveLT runs the full S3CA pipeline under the linear-threshold
// model on the Epinions profile (whose 1/in-degree weights satisfy the LT
// in-weight bound by construction) — the world-cache profile the triggering-
// model layer is accepted on, with the MC engine alongside for the parity
// of trends.
func BenchmarkSolveLT(b *testing.B) {
	for _, engine := range []string{diffusion.EngineMC, diffusion.EngineWorldCache} {
		b.Run("engine="+engine, func(b *testing.B) {
			inst := engineBenchInstance(b)
			o := core.Options{
				Engine: engine, Model: diffusion.ModelLT,
				Samples: 1000, Seed: 77,
			}
			var rate float64
			var stats core.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(inst, o)
				if err != nil {
					b.Fatal(err)
				}
				rate = sol.RedemptionRate
				stats = sol.Stats
			}
			b.ReportMetric(rate, "redemption")
			b.ReportMetric(float64(stats.Evaluations), "evals")
		})
	}
}

// --- Campaign serving benchmarks (the PR 3 acceptance benchmark) ---

// BenchmarkCampaignReuse measures what the Campaign session amortizes on
// the Epinions profile at the paper's 1000-sample setting: "cold" builds a
// fresh Campaign per solve — the deprecated one-shot path, paying engine
// construction, live-edge row materialization and world-cache snapshot
// allocation every time — while "warm" reuses one Campaign across solves,
// so every call after the first reads materialized rows and rebases a
// pooled snapshot. The solved deployments (and the redemption metric) are
// bit-identical across the two variants; only the amortization differs.
func BenchmarkCampaignReuse(b *testing.B) {
	problem, err := GenerateDataset("Epinions", 400, 77)
	if err != nil {
		b.Fatal(err)
	}
	campaignOpts := func() []Option {
		return []Option{WithEngine("worldcache"), WithSamples(1000), WithSeed(77)}
	}
	ctx := context.Background()
	var rate float64

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := problem.NewCampaign(campaignOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			r, err := c.Solve(ctx, WithSeed(77))
			if err != nil {
				b.Fatal(err)
			}
			rate = r.RedemptionRate
		}
		b.ReportMetric(rate, "redemption")
	})

	b.Run("warm", func(b *testing.B) {
		c, err := problem.NewCampaign(campaignOpts()...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Solve(ctx, WithSeed(77)); err != nil {
			b.Fatal(err) // prime rows and snapshot pool outside the timer
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := c.Solve(ctx, WithSeed(77))
			if err != nil {
				b.Fatal(err)
			}
			rate = r.RedemptionRate
		}
		b.ReportMetric(rate, "redemption")
	})
}

// --- Churn re-solve benchmark (the dynamic-graph acceptance run) ---

// BenchmarkChurnResolve measures what the delta-overlay + world-patching
// path buys after 1% edge churn: "cold" pays the full price of a changed
// graph — a fresh campaign over the final edge set (engine construction,
// live-edge materialization, snapshot build) plus a from-scratch solve —
// while "warm" holds a campaign that already solved the pre-churn graph and
// times ApplyEdges (overlay append, per-world patching of the pooled
// snapshot) plus Resolve (adopt, rebase over the affected worlds only,
// bounded greedy repair around the churned endpoints). Both cells report
// their redemption metric; the acceptance bar is warm ≥5× faster than cold
// at parity redemption on the million-node profile. Campaign construction
// and the pre-churn solve run outside the warm timer — that state exists
// before the churn arrives, which is the scenario being measured.
func BenchmarkChurnResolve(b *testing.B) {
	const churnFrac = 0.01
	ctx := context.Background()
	profiles := []struct {
		name    string
		problem func(b *testing.B) *Problem
		opts    []Option
	}{
		{"Epinions", func(b *testing.B) *Problem {
			p, err := GenerateDataset("Epinions", 400, 77)
			if err != nil {
				b.Fatal(err)
			}
			return p
		}, []Option{WithEngine("worldcache"), WithSamples(1000), WithSeed(77)}},
		{"MillionNode", func(b *testing.B) *Problem {
			g, err := gen.WattsStrogatz(1_000_000, 10, 0.1, rng.New(77))
			if err != nil {
				b.Fatal(err)
			}
			m, err := costmodel.Assign(g, costmodel.Params{Mu: 10, Sigma: 2}, rng.New(77))
			if err != nil {
				b.Fatal(err)
			}
			return &Problem{inst: &diffusion.Instance{
				G: g, Benefit: m.Benefit, SeedCost: m.SeedCost, SCCost: m.SCCost,
				Budget: 3000,
			}}
		}, []Option{WithEngine("worldcache"), WithSamples(100), WithSeed(77), WithGPILimit(2000)}},
	}
	for _, pf := range profiles {
		b.Run("profile="+pf.name, func(b *testing.B) {
			problem := pf.problem(b)
			reduced, stream, err := problem.HoldOutEdges(churnFrac, 77)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("phase=cold", func(b *testing.B) {
				var rate float64
				for i := 0; i < b.N; i++ {
					c, err := problem.NewCampaign(pf.opts...)
					if err != nil {
						b.Fatal(err)
					}
					r, err := c.Solve(ctx, WithSeed(77))
					if err != nil {
						b.Fatal(err)
					}
					rate = r.RedemptionRate
				}
				b.ReportMetric(rate, "redemption")
			})
			b.Run("phase=warm", func(b *testing.B) {
				var rate, patched float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					c, err := reduced.NewCampaign(pf.opts...)
					if err != nil {
						b.Fatal(err)
					}
					prev, err := c.Solve(ctx, WithSeed(77))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					st, err := c.ApplyEdges(ctx, stream)
					if err != nil {
						b.Fatal(err)
					}
					r, err := c.Resolve(ctx, prev, WithSeed(77))
					if err != nil {
						b.Fatal(err)
					}
					rate = r.RedemptionRate
					patched = float64(st.SnapshotsPatched)
				}
				b.ReportMetric(rate, "redemption")
				b.ReportMetric(patched, "patched")
			})
		})
	}
}

// --- SSR warm-reuse benchmark (the pooled sketch-state acceptance run) ---

// BenchmarkSSRWarmReuse measures what the pooled SSR sample state buys
// after 1% edge churn on the Epinions profile: "cold" pays a fresh campaign
// and a from-scratch sketch solve over the final edge set, while "warm"
// holds a campaign that already solved the pre-churn graph and times
// ApplyEdges (overlay append, NoteChurn on the pooled sketch state) plus
// Resolve (per-edge re-validation of the pooled samples, re-draw of the
// invalidated few, resumed doubling). The warm cell reports the reused and
// redrawn sample counts alongside its redemption metric — the acceptance
// bar is ≥90% of pooled samples reused and warm beating cold by ≥3×.
func BenchmarkSSRWarmReuse(b *testing.B) {
	const churnFrac = 0.01
	ctx := context.Background()
	problem, err := GenerateDataset("Epinions", 400, 77)
	if err != nil {
		b.Fatal(err)
	}
	opts := func() []Option {
		return []Option{WithEngine("ssr"), WithSamples(1000), WithSeed(77)}
	}
	reduced, stream, err := problem.HoldOutEdges(churnFrac, 77)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("phase=cold", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			c, err := problem.NewCampaign(opts()...)
			if err != nil {
				b.Fatal(err)
			}
			r, err := c.Solve(ctx, WithSeed(77))
			if err != nil {
				b.Fatal(err)
			}
			rate = r.RedemptionRate
		}
		b.ReportMetric(rate, "redemption")
	})
	b.Run("phase=warm", func(b *testing.B) {
		var rate, reused, redrawn float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			c, err := reduced.NewCampaign(opts()...)
			if err != nil {
				b.Fatal(err)
			}
			prev, err := c.Solve(ctx, WithSeed(77))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := c.ApplyEdges(ctx, stream); err != nil {
				b.Fatal(err)
			}
			r, err := c.Resolve(ctx, prev, WithSeed(77))
			if err != nil {
				b.Fatal(err)
			}
			rate = r.RedemptionRate
			reused = float64(r.SketchReused)
			redrawn = float64(r.SketchRedrawn)
		}
		b.ReportMetric(rate, "redemption")
		b.ReportMetric(reused, "reused")
		b.ReportMetric(redrawn, "redrawn")
	})
}

// --- Million-node bench profile (the graph-substrate acceptance run) ---

// BenchmarkMillionNodeSolve runs the full S3CA pipeline on a million-node
// Watts–Strogatz small world (10M directed edges, 1/in-degree weights) —
// the large-scale profile EXPERIMENTS.md ("Large-graph scaling") documents.
// The GPI visit cap bounds the guaranteed-path enumeration (the one phase
// whose faithful form is quadratic in the budget-feasible frontier); the
// world-cache engine's dense tier is over budget at this size, so delta
// queries run on the CSR inverted index. Both eval modes run — the kernels
// are bit-identical, so the redemption metrics must agree exactly; the
// mode=scalar variant keeps the bit-parallel speedup measurable at this
// scale. Reported metrics: the redemption rate and the end-of-solve heap
// (the documented memory budget is 2 GiB).
func BenchmarkMillionNodeSolve(b *testing.B) {
	g, err := gen.WattsStrogatz(1_000_000, 10, 0.1, rng.New(77))
	if err != nil {
		b.Fatal(err)
	}
	m, err := costmodel.Assign(g, costmodel.Params{Mu: 10, Sigma: 2}, rng.New(77))
	if err != nil {
		b.Fatal(err)
	}
	inst := &diffusion.Instance{
		G: g, Benefit: m.Benefit, SeedCost: m.SeedCost, SCCost: m.SCCost,
		Budget: 3000,
	}
	for _, mode := range diffusion.EvalModes() {
		b.Run("mode="+mode, func(b *testing.B) {
			var rate float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(inst, core.Options{
					Engine: diffusion.EngineWorldCache, Samples: 100, Seed: 77,
					GPILimit: 2000, EvalMode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = sol.RedemptionRate
			}
			b.StopTimer()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(rate, "redemption")
			b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heapMiB")
		})
	}
	// The SSR sketch solver at the same scale: seed/coupon selection never
	// forward-simulates (only the final snapshot scoring and the end-of-
	// solve measurement do), which is the cell this engine is accepted on —
	// it must beat the worldcache time above within the same heap budget.
	// Workers opts the sharded sample build, the gate-DP prefill and the
	// snapshot scoring fan into every available core; the selected
	// deployment is bit-identical for any worker count.
	b.Run("engine="+diffusion.EngineSSR, func(b *testing.B) {
		var rate float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sol, err := core.Solve(inst, core.Options{
				Engine: diffusion.EngineSSR, Samples: 100, Seed: 77,
				GPILimit: 2000, Workers: runtime.NumCPU(),
			})
			if err != nil {
				b.Fatal(err)
			}
			rate = sol.RedemptionRate
		}
		b.StopTimer()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(rate, "redemption")
		b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heapMiB")
	})
}

// BenchmarkMillionNodeSolveLT is the million-node profile under the
// linear-threshold model: the same Watts–Strogatz small world (1/in-degree
// weights, which satisfy the LT in-weight bound exactly), solved through
// the world-cache engine at a reduced 50-sample count — the LT substrate
// materializes per-node chosen-in-edge rows (4 bytes per world per touched
// node, budget-capped) instead of per-edge bit rows, and the smoke pins
// that the whole solve still fits the documented 2 GiB heap budget.
func BenchmarkMillionNodeSolveLT(b *testing.B) {
	g, err := gen.WattsStrogatz(1_000_000, 10, 0.1, rng.New(77))
	if err != nil {
		b.Fatal(err)
	}
	m, err := costmodel.Assign(g, costmodel.Params{Mu: 10, Sigma: 2}, rng.New(77))
	if err != nil {
		b.Fatal(err)
	}
	inst := &diffusion.Instance{
		G: g, Benefit: m.Benefit, SeedCost: m.SeedCost, SCCost: m.SCCost,
		Budget: 3000,
	}
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(inst, core.Options{
			Engine: diffusion.EngineWorldCache, Model: diffusion.ModelLT,
			Samples: 50, Seed: 77, GPILimit: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = sol.RedemptionRate
	}
	b.StopTimer()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(rate, "redemption")
	b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heapMiB")
}

// --- Micro-benchmarks of the substrate hot paths ---

func BenchmarkEstimatorEvaluate(b *testing.B) {
	inst := ablationInstance(b)
	d := diffusion.NewDeployment(inst.G.NumNodes())
	d.AddSeed(0)
	d.SetK(0, 3)
	est := diffusion.NewEstimator(inst, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Evaluate(d)
	}
}

func BenchmarkRedeemProbs(b *testing.B) {
	probs := make([]float64, 64)
	src := rng.New(1)
	for i := range probs {
		probs[i] = src.Float64()
	}
	out := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diffusion.RedeemProbsInto(out, probs, 16)
	}
}

func BenchmarkGeneratePreset(b *testing.B) {
	p := gen.Facebook.Scaled(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Generate(rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
