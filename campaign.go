package s3crm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"s3crm/internal/baselines"
	"s3crm/internal/core"
	"s3crm/internal/diffusion"
	"s3crm/internal/graph"
	"s3crm/internal/progress"
	"s3crm/internal/rng"
	"s3crm/internal/sketch"
	"s3crm/internal/stats"
)

// Campaign is a long-lived, concurrency-safe serving session over one
// Problem: it constructs the evaluation engine, the diffusion substrate and
// the scratch pools once and then serves many Solve, RunBaseline, Evaluate
// and EvaluateBatch calls against the shared state. Live-edge bit rows are
// materialized once and read by every call; world-cache snapshots are pooled
// and rebased instead of rebuilt; per-call RNG streams are derived
// deterministically from a call sequence number, so a campaign's call
// history is reproducible run to run (see DESIGN.md, "Serving API").
//
// All methods are safe for concurrent use. Each call accepts call-level
// options overriding the campaign's settings for that call only — including
// WithEngine, so one campaign serves requests across engines. A call-level
// WithSeed pins the call's streams to that seed alone, making it
// bit-identical to a one-shot call with the same seed regardless of what
// else the campaign is doing.
//
// Cancelling the call's context aborts the solve mid-iteration: the call
// returns an error wrapping both ctx.Err() and a *core.PartialError carrying
// the statistics gathered up to the abort.
type Campaign struct {
	p   *Problem
	cfg config
	seq atomic.Uint64 // call sequence numbers, starting at 1

	mu         sync.Mutex
	inst       *diffusion.Instance // current graph view; advances under ApplyEdges
	engines    map[engineKey]*enginePool
	defaultKey engineKey // the construction-time pool, exempt from eviction
	churned    []int32   // distinct churn endpoints since the last Resolve
}

// maxEnginePools bounds the engine-state cache. Calls are keyed by
// (samples, seed, diffusion, memBudget) — in a serving deployment those
// come from client requests, so without a cap a client sweeping seeds
// would grow the map (each entry holds a live-edge substrate) until OOM.
// Evicted pools stay alive for calls already using them and are rebuilt on
// the next request for their key; only warmth is lost, never correctness.
const maxEnginePools = 16

// maxIdleWorldCaches bounds each pool's idle snapshot list; one snapshot
// can hold dense per-(node, world) state, so keep only what a typical
// concurrent burst reuses.
const maxIdleWorldCaches = 8

// maxIdleSketchWarms bounds each pool's idle SSR sample states. A warm
// state holds both sample collections' arenas and inverted postings —
// typically far smaller than a world-cache snapshot but still O(samples ·
// avg RR-set size) — and sequential ssr traffic reuses exactly one.
const maxIdleSketchWarms = 2

// engineKey identifies the shared evaluation state two calls may reuse:
// calls agreeing on these fields see the same possible worlds, so they can
// share materialized live-edge rows and pooled world-cache snapshots. The
// engine name is deliberately absent — mc, worldcache, sketch and ssr all
// evaluate through the same underlying estimator — but the triggering
// model is present: IC and LT calls draw different per-world liveness, so
// they must never share substrates or snapshots. The SSR accuracy knobs
// (epsilon, delta) are part of the key: two calls disagreeing on them run
// different sample schedules, so their warmed state must stay separate.
type engineKey struct {
	samples        int
	seed           uint64
	model          string
	diffusion      string
	memBudget      int64
	epsilon, delta float64
}

// enginePool holds one engine key's shared state: the prototype estimator
// owning the live-edge substrate (concurrency-safe; per-call views share
// it) and idle world-cache instances whose snapshots and allocations warm
// calls rebase instead of rebuilding.
//
// Graph churn advances the pool through applyBatch: the prototype moves to
// an estimator over the extended view and every idle snapshot is patched in
// place. epoch counts those moves, and each checkout records the epoch it
// saw — a cache from a call that straddled an ApplyEdges comes back with a
// stale stamp and is dropped instead of re-pooled, so a snapshot over an old
// graph can never warm an incremental rebase against the new one.
type enginePool struct {
	mu    sync.Mutex
	proto *diffusion.Estimator
	epoch uint64
	idle  []*diffusion.WorldCache
	// idleSketch pools SSR sample states the way idle pools world-cache
	// snapshots: ssr calls check one out, the sketch solver replays or
	// patches it, and the state the solve produced comes back on success.
	// ApplyEdges notes churn on idle states in place (the actual sample
	// patching is deferred to the next checkout) and the shared epoch stamp
	// drops any state that straddled an append.
	idleSketch []*sketch.Warm
}

// view returns a per-call view of the pool's current prototype estimator.
func (ep *enginePool) view(ctx context.Context, workers int, evalMode string) *diffusion.Estimator {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	v := ep.proto.View(ctx, workers)
	v.EvalMode = evalMode
	return v
}

// checkout returns a world cache over a fresh per-call estimator view,
// reusing an idle instance's snapshot arrays when one is available, plus the
// pool's churn epoch at checkout time (hand it back to put).
func (ep *enginePool) checkout(ctx context.Context, workers int, evalMode string) (*diffusion.WorldCache, *diffusion.Estimator, uint64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	view := ep.proto.View(ctx, workers)
	view.EvalMode = evalMode
	if n := len(ep.idle); n > 0 {
		wc := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		wc.Est = view
		return wc, view, ep.epoch
	}
	return &diffusion.WorldCache{Est: view}, view, ep.epoch
}

// put returns a world cache to the pool. Only caches from calls that
// completed without error may come back: a cancelled call can leave the
// snapshot mid-rebase, and a corrupt snapshot must never seed a future
// incremental rebase. A cache checked out before a graph append (stale
// epoch) is dropped too — its snapshot describes the old graph. Beyond
// maxIdleWorldCaches the cache is dropped for the garbage collector.
func (ep *enginePool) put(wc *diffusion.WorldCache, epoch uint64) {
	if wc == nil {
		return
	}
	ep.mu.Lock()
	if epoch == ep.epoch && len(ep.idle) < maxIdleWorldCaches {
		ep.idle = append(ep.idle, wc)
	}
	ep.mu.Unlock()
}

// takeSketch pops an idle SSR sample state, newest first, plus the pool's
// churn epoch at checkout time. Unless dirtyOK is set, only exact (never
// churned) states are eligible: Solve may only reuse a state it can replay
// bit-identically, while Resolve (dirtyOK) accepts a churned state and
// patches it.
func (ep *enginePool) takeSketch(dirtyOK bool) (*sketch.Warm, uint64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for i := len(ep.idleSketch) - 1; i >= 0; i-- {
		w := ep.idleSketch[i]
		if dirtyOK || w.Exact() {
			ep.idleSketch = append(ep.idleSketch[:i], ep.idleSketch[i+1:]...)
			return w, ep.epoch
		}
	}
	return nil, ep.epoch
}

// putSketch returns an SSR sample state to the pool under the same rules as
// put: only successful calls re-pool, and a state checked out before a
// graph append (stale epoch) is dropped — it describes the old graph and
// never saw the append's NoteChurn.
func (ep *enginePool) putSketch(w *sketch.Warm, epoch uint64) {
	if w == nil {
		return
	}
	ep.mu.Lock()
	if epoch == ep.epoch && len(ep.idleSketch) < maxIdleSketchWarms {
		ep.idleSketch = append(ep.idleSketch, w)
	}
	ep.mu.Unlock()
}

// applyBatch moves the pool onto inst2, whose graph extends the prototype's
// by exactly batch: the prototype becomes a churn-extended estimator
// (carrying the liveness substrate forward via Extend) and every idle world
// cache is patched in place, re-simulating only the worlds the appended
// edges can perturb. Returns how many idle snapshots were patched.
func (ep *enginePool) applyBatch(inst2 *diffusion.Instance, batch []graph.Edge, churnTargets []int32, workers int) int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	next := ep.proto.WithGraph(inst2, churnTargets)
	for _, wc := range ep.idle {
		wc.PatchEdges(next.View(context.Background(), workers), batch)
	}
	// Idle SSR states record the batch (endpoint → max appended key) and
	// defer the sample patch to their next checkout; the append-only key
	// contract puts the batch's keys at the tail of the key space.
	firstKey := int64(inst2.G.NumEdges() - len(batch))
	for _, w := range ep.idleSketch {
		w.NoteChurn(inst2, batch, firstKey)
	}
	ep.proto = next
	ep.epoch++
	return len(ep.idle)
}

// NewCampaign validates the options eagerly and constructs the campaign's
// default engine: the estimator and its live-edge substrate are built here,
// once, so every call — and every engine, mc and worldcache alike — reuses
// them. Option errors (unknown engine or diffusion name, non-positive
// sample count, …) surface from this call with a "want one of …" message
// instead of failing deep inside a solve.
func (p *Problem) NewCampaign(opts ...Option) (*Campaign, error) {
	cfg, err := defaultConfig().apply(opts)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		p:       p,
		cfg:     cfg,
		inst:    p.inst,
		engines: make(map[engineKey]*enginePool),
	}
	c.defaultKey = poolKey(cfg, cfg.seed)
	c.mu.Lock()
	_, err = c.poolLocked(cfg, cfg.seed)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func poolKey(cfg config, seed uint64) engineKey {
	return engineKey{
		samples:   cfg.samples,
		seed:      seed,
		model:     cfg.model,
		diffusion: cfg.diffusion,
		memBudget: cfg.memBudget,
		epsilon:   cfg.epsilon,
		delta:     cfg.delta,
	}
}

// Problem returns the problem the campaign serves.
func (c *Campaign) Problem() *Problem { return c.p }

// poolLocked returns (building on first use) the shared engine state for
// the given call configuration; c.mu must be held. Pools are built over the
// campaign's current graph view, which advances under ApplyEdges. The cache
// is bounded: past maxEnginePools an arbitrary non-default entry is evicted
// — dropped pools are rebuilt on their next use, so eviction costs warmth,
// not correctness.
func (c *Campaign) poolLocked(cfg config, seed uint64) (*enginePool, error) {
	key := poolKey(cfg, seed)
	if ep, ok := c.engines[key]; ok {
		return ep, nil
	}
	// EngineMC builds the bare estimator the other engines wrap; the
	// call-level engine choice is applied per call (see call.engine).
	ev, err := diffusion.NewEngineOpts(c.inst, diffusion.EngineOptions{
		Engine: diffusion.EngineMC, Model: cfg.model,
		Samples: cfg.samples, Seed: seed,
		Diffusion: cfg.diffusion, LiveEdgeMemBudget: cfg.memBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	for k := range c.engines {
		if len(c.engines) < maxEnginePools {
			break
		}
		if k != c.defaultKey {
			delete(c.engines, k)
		}
	}
	ep := &enginePool{proto: ev.(*diffusion.Estimator)}
	c.engines[key] = ep
	return ep, nil
}

// call is one resolved campaign call: the effective configuration, the
// sequence number, and the RNG stream seeds derived from them.
type call struct {
	cfg config
	seq uint64
	// seed drives the call's possible worlds (the estimator coin). It is
	// the campaign seed unless the call pinned its own with WithSeed, so
	// unpinned calls share worlds — and live-edge rows, and world-cache
	// snapshots — with every other unpinned call.
	seed uint64
	// scorerSeed decorrelates the solver's snapshot-selection stream. A
	// pinned call uses the classic one-shot derivation (seed ^ 0x5c04e) so
	// results match the deprecated entry points bit for bit; an unpinned
	// call derives it from the call sequence number, drawing fresh,
	// reproducible selection noise per call.
	scorerSeed uint64
	// degraded records that the campaign's degradation hook lowered this
	// call's sample count below what was requested (see WithDegradation);
	// the call's Results report it.
	degraded bool
}

// newCall applies call-level overrides and assigns the next sequence
// number.
func (c *Campaign) newCall(opts []Option) (call, error) {
	base := c.cfg
	base.seedPinned = false // pinning is a call-level property
	cfg, err := base.apply(opts)
	if err != nil {
		return call{}, err
	}
	if cfg.engine == diffusion.EngineAuto {
		// Resolve auto by the campaign's *current* size (ApplyEdges growth
		// included) so every downstream consumer — pools, core dispatch,
		// results — sees a concrete engine name.
		c.mu.Lock()
		cfg.engine = diffusion.AutoEngine(c.inst.G.NumNodes(), c.inst.G.NumEdges())
		c.mu.Unlock()
	}
	cl := call{cfg: cfg, seq: c.seq.Add(1), seed: cfg.seed}
	if cfg.degrade != nil {
		// Graceful degradation: the hook may downgrade the call to fewer
		// Monte-Carlo worlds (never more, never below the WithMinSamples
		// floor or one world). The degraded sample count keys its own
		// engine pool, so a ladder of a few rungs stays warm per rung.
		if eff := cfg.degrade(cfg.samples); eff < cfg.samples {
			floor := cfg.minSamples
			if floor < 1 {
				floor = 1
			}
			if eff < floor {
				eff = floor
			}
			if eff < cfg.samples {
				cl.cfg.samples = eff
				cl.degraded = true
			}
		}
	}
	if cfg.seedPinned {
		cl.scorerSeed = cl.seed ^ 0x5c04e
	} else {
		cl.scorerSeed = rng.DeriveStream(cl.seed^0x5c04e, cl.seq)
	}
	return cl, nil
}

// progressFor wraps the call's progress sink, stamping each event with the
// emitting algorithm and the call sequence number.
func (cl *call) progressFor(algo string) progress.Func {
	fn := cl.cfg.progress
	if fn == nil {
		return nil
	}
	seq := cl.seq
	return func(e progress.Event) {
		e.Algorithm = algo
		e.Call = seq
		fn(e)
	}
}

// callEngines is one call's resolved evaluation set: per requested stream
// seed, an evaluator over the campaign's shared state and the estimator view
// it measures through. The whole set resolves under one campaign lock hold,
// so a concurrent ApplyEdges lands entirely before or entirely after it —
// a call's engines always agree on the graph view (views[i].Inst is that
// view; use it, not the campaign's, for everything the call derives).
type callEngines struct {
	evs   []diffusion.Evaluator
	views []*diffusion.Estimator
	// sketch is the SSR sample state checked out for the call (nil when
	// none was pooled or the call runs another engine); sketchPut re-pools
	// the state the solve produced, under the checkout's epoch stamp.
	sketch    *sketch.Warm
	sketchPut func(*sketch.Warm)
	release   func(error)
}

// enginesFor resolves one evaluator per seed for the call configuration: a
// view of the pool's shared estimator carrying the call's context and worker
// count, wrapped in a (pooled, epoch-stamped) world cache when the call runs
// the worldcache engine. With bare set the evaluators stay plain estimator
// views regardless of the configured engine (the baselines evaluate whole
// deployments only). The eval mode is a per-call kernel choice, deliberately
// absent from engineKey: scalar and bit-parallel calls share worlds,
// substrates and snapshots, so it is stamped on the views rather than baked
// into the pools. The release func must be invoked with the call's final
// error; it re-pools checked-out world caches only on success.
func (c *Campaign) enginesFor(ctx context.Context, cfg config, seeds []uint64, bare, sketchDirtyOK bool) (*callEngines, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ce := &callEngines{release: func(error) {}, sketchPut: func(*sketch.Warm) {}}
	var puts []func(error)
	for _, seed := range seeds {
		ep, err := c.poolLocked(cfg, seed)
		if err != nil {
			return nil, err
		}
		if !bare && cfg.engine == diffusion.EngineWorldCache {
			wc, view, epoch := ep.checkout(ctx, cfg.workers, cfg.evalMode)
			ep := ep
			puts = append(puts, func(callErr error) {
				if callErr == nil {
					ep.put(wc, epoch)
				}
			})
			ce.evs = append(ce.evs, wc)
			ce.views = append(ce.views, view)
		} else { // mc, sketch, ssr: the estimator itself
			view := ep.view(ctx, cfg.workers, cfg.evalMode)
			ce.evs = append(ce.evs, view)
			ce.views = append(ce.views, view)
		}
		if !bare && cfg.engine == diffusion.EngineSSR && len(ce.evs) == 1 {
			// The call's main seed also keys its SSR sample pool; the
			// scorer seed's pool (pinned calls) never holds sketch state.
			w, epoch := ep.takeSketch(sketchDirtyOK)
			ce.sketch = w
			ep := ep
			ce.sketchPut = func(nw *sketch.Warm) { ep.putSketch(nw, epoch) }
		}
	}
	if len(puts) > 0 {
		ce.release = func(callErr error) {
			for _, put := range puts {
				put(callErr)
			}
		}
	}
	return ce, nil
}

// Solve runs S3CA, the paper's approximation algorithm, against the
// campaign's shared engine. Cancelling ctx aborts mid-iteration with an
// error wrapping ctx.Err() and the partial statistics.
func (c *Campaign) Solve(ctx context.Context, opts ...Option) (*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	// The snapshot-selection scorer is an independent engine over a
	// decorrelated stream. For pinned calls the stream is stable, so pool
	// it like the main engine and warm calls reuse its materialized worlds
	// too; unpinned calls draw a fresh stream per call (by design), so
	// pooling would only grow the engine map — let the solver construct
	// the scorer internally instead.
	seeds := []uint64{cl.seed}
	if cl.cfg.seedPinned {
		seeds = append(seeds, cl.scorerSeed)
	}
	ce, err := c.enginesFor(ctx, cl.cfg, seeds, false, false)
	if err != nil {
		return nil, err
	}
	ev, view := ce.evs[0], ce.views[0]
	release := ce.release
	var scorer diffusion.Evaluator
	if len(ce.evs) > 1 {
		scorer = ce.evs[1]
	}
	inst := view.Inst
	sol, err := core.SolveCtx(ctx, inst, core.Options{
		Engine:            cl.cfg.engine,
		Model:             cl.cfg.model,
		Diffusion:         cl.cfg.diffusion,
		LiveEdgeMemBudget: cl.cfg.memBudget,
		EvalMode:          cl.cfg.evalMode,
		Samples:           cl.cfg.samples,
		Seed:              cl.seed,
		ScorerSeed:        cl.scorerSeed,
		Workers:           cl.cfg.workers,
		GPILimit:          cl.cfg.gpiLimit,
		ExhaustiveID:      cl.cfg.exhaustiveID,
		Epsilon:           cl.cfg.epsilon,
		Delta:             cl.cfg.delta,
		Evaluator:         ev,
		Scorer:            scorer,
		SketchWarm:        ce.sketch,
		SketchPool:        true,
		Progress:          cl.progressFor("S3CA"),
	})
	release(err)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	ce.sketchPut(sol.SketchWarm)
	r := resultFrom("S3CA", inst, sol.Deployment, view, cl.cfg.samples, cl.degraded)
	// resultFrom measures on the ctx-carrying view, which breaks out of
	// its world sweep when cancelled; never hand partial sums to a caller.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("s3crm: final measurement aborted: %w", err)
	}
	r.ExploredRatio = float64(sol.Stats.ExploredNodes) / float64(inst.G.NumNodes())
	copySketchStats(r, sol.Stats)
	return r, nil
}

// copySketchStats surfaces the SSR engine's build instrumentation on a
// public result; other engines leave the fields zero (and absent from the
// JSON encoding).
func copySketchStats(r *Result, st core.Stats) {
	r.SketchWorkers = st.SketchWorkers
	r.SketchBuildNs = st.SketchBuildNs
	r.SketchReused = st.SketchReused
	r.SketchRedrawn = st.SketchRedrawn
}

// RunBaseline runs one of the paper's comparison algorithms (see Baselines)
// against the campaign's shared engine. Cancelling ctx aborts between
// greedy steps with an error wrapping ctx.Err().
func (c *Campaign) RunBaseline(ctx context.Context, name string, opts ...Option) (*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	// The baselines have no incremental search paths: they evaluate whole
	// deployments, so the bare estimator view serves every engine (no
	// world cache is checked out); the engine name still selects
	// sketch-based candidate pruning.
	ce, err := c.enginesFor(ctx, cl.cfg, []uint64{cl.seed}, true, false)
	if err != nil {
		return nil, err
	}
	view := ce.views[0]
	inst := view.Inst
	cfg := baselines.Config{
		Engine:            cl.cfg.engine,
		Model:             cl.cfg.model,
		Diffusion:         cl.cfg.diffusion,
		LiveEdgeMemBudget: cl.cfg.memBudget,
		EvalMode:          cl.cfg.evalMode,
		Samples:           cl.cfg.samples,
		Seed:              cl.seed,
		Workers:           cl.cfg.workers,
		CandidateCap:      cl.cfg.candidateCap,
		LimitedK:          cl.cfg.limitedK,
		Evaluator:         view,
		Progress:          cl.progressFor(name),
	}
	var o *baselines.Outcome
	switch name {
	case "IM-U":
		o, err = baselines.IM(ctx, inst, cfg)
	case "IM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.IM(ctx, inst, cfg)
	case "PM-U":
		o, err = baselines.PM(ctx, inst, cfg)
	case "PM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.PM(ctx, inst, cfg)
	case "IM-S":
		o, err = baselines.IMS(ctx, inst, cfg)
	default:
		return nil, fmt.Errorf("s3crm: unknown baseline %q (want one of %v)", name, Baselines())
	}
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	r := resultFrom(name, inst, o.Deployment, view, cl.cfg.samples, cl.degraded)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("s3crm: final measurement aborted: %w", err)
	}
	return r, nil
}

// Evaluate measures one hand-built deployment against the campaign's shared
// possible worlds: the expected benefit, the closed-form coupon cost, the
// redemption rate and hop statistics.
func (c *Campaign) Evaluate(ctx context.Context, dep Deployment, opts ...Option) (*Result, error) {
	rs, err := c.EvaluateBatch(ctx, []Deployment{dep}, opts...)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// EvaluateBatch measures many candidate deployments against the same shared
// Monte-Carlo samples — common random numbers, so differences between the
// results are far less noisy than independently sampled evaluations, and
// any live-edge row materialized by one deployment serves the rest. The
// deployments are evaluated concurrently across the campaign's workers;
// results are returned in input order and are bit-identical to sequential
// evaluation.
func (c *Campaign) EvaluateBatch(ctx context.Context, deps []Deployment, opts ...Option) ([]*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	ce, err := c.enginesFor(ctx, cl.cfg, []uint64{cl.seed}, true, false)
	if err != nil {
		return nil, err
	}
	base := ce.views[0]
	inst := base.Inst
	ds := make([]*diffusion.Deployment, len(deps))
	for i, dep := range deps {
		if ds[i], err = buildDeploymentFor(inst, dep); err != nil {
			return nil, err
		}
	}
	results := make([]*Result, len(ds))
	workers := cl.cfg.workers
	if workers > len(ds) {
		workers = len(ds)
	}
	if workers <= 1 || len(ds) < 2 {
		// Sequential batch: one view, per-evaluation parallelism as
		// configured. The cancellation check runs after each evaluation —
		// a cancelled view breaks out of its world sweep with partial
		// sums, so a result computed under a cancelled ctx is garbage and
		// must never be returned.
		for i, d := range ds {
			results[i] = resultFrom("custom", inst, d, base, cl.cfg.samples, cl.degraded)
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("s3crm: evaluate aborted after %d of %d deployments: %w", i, len(ds), err)
			}
		}
		return results, nil
	}
	// Parallel batch: fan the deployments out across workers, each worker
	// evaluating sequentially on its own view derived from the call's base
	// view (evaluations are independent and worlds stateless, so the
	// fan-out is bit-identical to the sequential loop).
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			view := base.View(ctx, 0)
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(ds) || ctx.Err() != nil {
					return
				}
				results[i] = resultFrom("custom", inst, ds[i], view, cl.cfg.samples, cl.degraded)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		done := 0
		for _, r := range results {
			if r != nil {
				done++
			}
		}
		return nil, fmt.Errorf("s3crm: evaluate aborted after %d of %d deployments: %w", done, len(ds), err)
	}
	return results, nil
}

// resultFrom measures a solved deployment with the given estimator view and
// assembles the public result. samples is the call's effective Monte-Carlo
// world count and degraded whether a degradation hook lowered it below the
// request; both are reported alongside the standard-error bar derived from
// the per-world benefit variance the kernels accumulate.
func resultFrom(name string, inst *diffusion.Instance, d *diffusion.Deployment, est diffusion.Evaluator, samples int, degraded bool) *Result {
	return resultOf(name, inst, d, est.Evaluate(d), samples, degraded)
}

// resultOf assembles the public result from an already-measured diffusion
// result — the warm-restart path hands in its final Rebase measurement
// instead of paying one more full simulation.
func resultOf(name string, inst *diffusion.Instance, d *diffusion.Deployment, res diffusion.Result, samples int, degraded bool) *Result {
	seedCost := inst.SeedCostOf(d)
	scCost := inst.SCCostOf(d)
	out := &Result{
		Algorithm:        name,
		Coupons:          map[int]int{},
		Benefit:          res.Benefit,
		SeedCost:         seedCost,
		CouponCost:       scCost,
		TotalCost:        seedCost + scCost,
		FarthestHop:      res.FarthestHop,
		EffectiveSamples: samples,
		Degraded:         degraded,
	}
	if out.TotalCost > 0 {
		out.RedemptionRate = out.Benefit / out.TotalCost
		// The costs are deterministic in the deployment, so the objective's
		// Monte-Carlo error is the benefit's scaled by 1/cost.
		out.StdErr = stats.StdErrFromMoments(samples, res.Benefit, res.BenefitSqMean) / out.TotalCost
	}
	for _, s := range d.Seeds() {
		out.Seeds = append(out.Seeds, int(s))
	}
	sort.Ints(out.Seeds)
	for _, v := range d.Allocated() {
		out.Coupons[int(v)] = d.K(v)
	}
	return out
}
