package s3crm

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"s3crm/internal/baselines"
	"s3crm/internal/core"
	"s3crm/internal/diffusion"
	"s3crm/internal/progress"
	"s3crm/internal/rng"
	"s3crm/internal/stats"
)

// Campaign is a long-lived, concurrency-safe serving session over one
// Problem: it constructs the evaluation engine, the diffusion substrate and
// the scratch pools once and then serves many Solve, RunBaseline, Evaluate
// and EvaluateBatch calls against the shared state. Live-edge bit rows are
// materialized once and read by every call; world-cache snapshots are pooled
// and rebased instead of rebuilt; per-call RNG streams are derived
// deterministically from a call sequence number, so a campaign's call
// history is reproducible run to run (see DESIGN.md, "Serving API").
//
// All methods are safe for concurrent use. Each call accepts call-level
// options overriding the campaign's settings for that call only — including
// WithEngine, so one campaign serves requests across engines. A call-level
// WithSeed pins the call's streams to that seed alone, making it
// bit-identical to a one-shot call with the same seed regardless of what
// else the campaign is doing.
//
// Cancelling the call's context aborts the solve mid-iteration: the call
// returns an error wrapping both ctx.Err() and a *core.PartialError carrying
// the statistics gathered up to the abort.
type Campaign struct {
	p   *Problem
	cfg config
	seq atomic.Uint64 // call sequence numbers, starting at 1

	mu         sync.Mutex
	engines    map[engineKey]*enginePool
	defaultKey engineKey // the construction-time pool, exempt from eviction
}

// maxEnginePools bounds the engine-state cache. Calls are keyed by
// (samples, seed, diffusion, memBudget) — in a serving deployment those
// come from client requests, so without a cap a client sweeping seeds
// would grow the map (each entry holds a live-edge substrate) until OOM.
// Evicted pools stay alive for calls already using them and are rebuilt on
// the next request for their key; only warmth is lost, never correctness.
const maxEnginePools = 16

// maxIdleWorldCaches bounds each pool's idle snapshot list; one snapshot
// can hold dense per-(node, world) state, so keep only what a typical
// concurrent burst reuses.
const maxIdleWorldCaches = 8

// engineKey identifies the shared evaluation state two calls may reuse:
// calls agreeing on these fields see the same possible worlds, so they can
// share materialized live-edge rows and pooled world-cache snapshots. The
// engine name is deliberately absent — mc, worldcache, sketch and ssr all
// evaluate through the same underlying estimator — but the triggering
// model is present: IC and LT calls draw different per-world liveness, so
// they must never share substrates or snapshots. The SSR accuracy knobs
// (epsilon, delta) are part of the key: two calls disagreeing on them run
// different sample schedules, so their warmed state must stay separate.
type engineKey struct {
	samples        int
	seed           uint64
	model          string
	diffusion      string
	memBudget      int64
	epsilon, delta float64
}

// enginePool holds one engine key's shared state: the prototype estimator
// owning the live-edge substrate (concurrency-safe; per-call views share
// it) and idle world-cache instances whose snapshots and allocations warm
// calls rebase instead of rebuilding.
type enginePool struct {
	proto *diffusion.Estimator

	mu   sync.Mutex
	idle []*diffusion.WorldCache
}

// checkout returns a world cache over the per-call estimator view, reusing
// an idle instance's snapshot arrays when one is available.
func (ep *enginePool) checkout(view *diffusion.Estimator) *diffusion.WorldCache {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if n := len(ep.idle); n > 0 {
		wc := ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		wc.Est = view
		return wc
	}
	return &diffusion.WorldCache{Est: view}
}

// put returns a world cache to the pool. Only caches from calls that
// completed without error may come back: a cancelled call can leave the
// snapshot mid-rebase, and a corrupt snapshot must never seed a future
// incremental rebase. Beyond maxIdleWorldCaches the cache is dropped for
// the garbage collector.
func (ep *enginePool) put(wc *diffusion.WorldCache) {
	if wc == nil {
		return
	}
	ep.mu.Lock()
	if len(ep.idle) < maxIdleWorldCaches {
		ep.idle = append(ep.idle, wc)
	}
	ep.mu.Unlock()
}

// NewCampaign validates the options eagerly and constructs the campaign's
// default engine: the estimator and its live-edge substrate are built here,
// once, so every call — and every engine, mc and worldcache alike — reuses
// them. Option errors (unknown engine or diffusion name, non-positive
// sample count, …) surface from this call with a "want one of …" message
// instead of failing deep inside a solve.
func (p *Problem) NewCampaign(opts ...Option) (*Campaign, error) {
	cfg, err := defaultConfig().apply(opts)
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		p:       p,
		cfg:     cfg,
		engines: make(map[engineKey]*enginePool),
	}
	c.defaultKey = poolKey(cfg, cfg.seed)
	if _, err := c.pool(cfg, cfg.seed); err != nil {
		return nil, err
	}
	return c, nil
}

func poolKey(cfg config, seed uint64) engineKey {
	return engineKey{
		samples:   cfg.samples,
		seed:      seed,
		model:     cfg.model,
		diffusion: cfg.diffusion,
		memBudget: cfg.memBudget,
		epsilon:   cfg.epsilon,
		delta:     cfg.delta,
	}
}

// Problem returns the problem the campaign serves.
func (c *Campaign) Problem() *Problem { return c.p }

// pool returns (building on first use) the shared engine state for the
// given call configuration. The cache is bounded: past maxEnginePools an
// arbitrary non-default entry is evicted — dropped pools are rebuilt on
// their next use, so eviction costs warmth, not correctness.
func (c *Campaign) pool(cfg config, seed uint64) (*enginePool, error) {
	key := poolKey(cfg, seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep, ok := c.engines[key]; ok {
		return ep, nil
	}
	// EngineMC builds the bare estimator the other engines wrap; the
	// call-level engine choice is applied per call (see call.engine).
	ev, err := diffusion.NewEngineOpts(c.p.inst, diffusion.EngineOptions{
		Engine: diffusion.EngineMC, Model: cfg.model,
		Samples: cfg.samples, Seed: seed,
		Diffusion: cfg.diffusion, LiveEdgeMemBudget: cfg.memBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	for k := range c.engines {
		if len(c.engines) < maxEnginePools {
			break
		}
		if k != c.defaultKey {
			delete(c.engines, k)
		}
	}
	ep := &enginePool{proto: ev.(*diffusion.Estimator)}
	c.engines[key] = ep
	return ep, nil
}

// call is one resolved campaign call: the effective configuration, the
// sequence number, and the RNG stream seeds derived from them.
type call struct {
	cfg config
	seq uint64
	// seed drives the call's possible worlds (the estimator coin). It is
	// the campaign seed unless the call pinned its own with WithSeed, so
	// unpinned calls share worlds — and live-edge rows, and world-cache
	// snapshots — with every other unpinned call.
	seed uint64
	// scorerSeed decorrelates the solver's snapshot-selection stream. A
	// pinned call uses the classic one-shot derivation (seed ^ 0x5c04e) so
	// results match the deprecated entry points bit for bit; an unpinned
	// call derives it from the call sequence number, drawing fresh,
	// reproducible selection noise per call.
	scorerSeed uint64
	// degraded records that the campaign's degradation hook lowered this
	// call's sample count below what was requested (see WithDegradation);
	// the call's Results report it.
	degraded bool
}

// newCall applies call-level overrides and assigns the next sequence
// number.
func (c *Campaign) newCall(opts []Option) (call, error) {
	base := c.cfg
	base.seedPinned = false // pinning is a call-level property
	cfg, err := base.apply(opts)
	if err != nil {
		return call{}, err
	}
	cl := call{cfg: cfg, seq: c.seq.Add(1), seed: cfg.seed}
	if cfg.degrade != nil {
		// Graceful degradation: the hook may downgrade the call to fewer
		// Monte-Carlo worlds (never more, never below the WithMinSamples
		// floor or one world). The degraded sample count keys its own
		// engine pool, so a ladder of a few rungs stays warm per rung.
		if eff := cfg.degrade(cfg.samples); eff < cfg.samples {
			floor := cfg.minSamples
			if floor < 1 {
				floor = 1
			}
			if eff < floor {
				eff = floor
			}
			if eff < cfg.samples {
				cl.cfg.samples = eff
				cl.degraded = true
			}
		}
	}
	if cfg.seedPinned {
		cl.scorerSeed = cl.seed ^ 0x5c04e
	} else {
		cl.scorerSeed = rng.DeriveStream(cl.seed^0x5c04e, cl.seq)
	}
	return cl, nil
}

// progressFor wraps the call's progress sink, stamping each event with the
// emitting algorithm and the call sequence number.
func (cl *call) progressFor(algo string) progress.Func {
	fn := cl.cfg.progress
	if fn == nil {
		return nil
	}
	seq := cl.seq
	return func(e progress.Event) {
		e.Algorithm = algo
		e.Call = seq
		fn(e)
	}
}

// engineFor builds a per-call evaluation engine over the shared state for
// the given stream seed: a view of the pool's shared estimator carrying the
// call's context and worker count, wrapped in a (pooled) world cache when
// the call runs the worldcache engine. The returned release func must be
// invoked with the call's final error; it returns the world cache to the
// pool only on success.
func (c *Campaign) engineFor(ctx context.Context, cfg config, seed uint64) (ev diffusion.Evaluator, view *diffusion.Estimator, release func(error), err error) {
	ep, err := c.pool(cfg, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	view = ep.proto.View(ctx, cfg.workers)
	// The eval mode is a per-call kernel choice, deliberately absent from
	// engineKey: scalar and bit-parallel calls share worlds, substrates and
	// snapshots, so it is stamped on the view rather than baked into the pool.
	view.EvalMode = cfg.evalMode
	release = func(error) {}
	switch cfg.engine {
	case diffusion.EngineWorldCache:
		wc := ep.checkout(view)
		ev = wc
		release = func(callErr error) {
			if callErr == nil {
				ep.put(wc)
			}
		}
	default: // mc, sketch, ssr: the estimator itself
		ev = view
	}
	return ev, view, release, nil
}

// engine builds the call's main evaluation engine.
func (c *Campaign) engine(ctx context.Context, cl call) (diffusion.Evaluator, *diffusion.Estimator, func(error), error) {
	return c.engineFor(ctx, cl.cfg, cl.seed)
}

// Solve runs S3CA, the paper's approximation algorithm, against the
// campaign's shared engine. Cancelling ctx aborts mid-iteration with an
// error wrapping ctx.Err() and the partial statistics.
func (c *Campaign) Solve(ctx context.Context, opts ...Option) (*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	ev, view, release, err := c.engine(ctx, cl)
	if err != nil {
		return nil, err
	}
	// The snapshot-selection scorer is an independent engine over a
	// decorrelated stream. For pinned calls the stream is stable, so pool
	// it like the main engine and warm calls reuse its materialized worlds
	// too; unpinned calls draw a fresh stream per call (by design), so
	// pooling would only grow the engine map — let the solver construct
	// the scorer internally instead.
	var (
		scorer        diffusion.Evaluator
		releaseScorer = func(error) {}
	)
	if cl.cfg.seedPinned {
		scorer, _, releaseScorer, err = c.engineFor(ctx, cl.cfg, cl.scorerSeed)
		if err != nil {
			release(err)
			return nil, err
		}
	}
	sol, err := core.SolveCtx(ctx, c.p.inst, core.Options{
		Engine:            cl.cfg.engine,
		Model:             cl.cfg.model,
		Diffusion:         cl.cfg.diffusion,
		LiveEdgeMemBudget: cl.cfg.memBudget,
		EvalMode:          cl.cfg.evalMode,
		Samples:           cl.cfg.samples,
		Seed:              cl.seed,
		ScorerSeed:        cl.scorerSeed,
		Workers:           cl.cfg.workers,
		GPILimit:          cl.cfg.gpiLimit,
		ExhaustiveID:      cl.cfg.exhaustiveID,
		Epsilon:           cl.cfg.epsilon,
		Delta:             cl.cfg.delta,
		Evaluator:         ev,
		Scorer:            scorer,
		Progress:          cl.progressFor("S3CA"),
	})
	release(err)
	releaseScorer(err)
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	r := resultFrom("S3CA", c.p.inst, sol.Deployment, view, cl.cfg.samples, cl.degraded)
	// resultFrom measures on the ctx-carrying view, which breaks out of
	// its world sweep when cancelled; never hand partial sums to a caller.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("s3crm: final measurement aborted: %w", err)
	}
	r.ExploredRatio = float64(sol.Stats.ExploredNodes) / float64(c.p.Users())
	return r, nil
}

// RunBaseline runs one of the paper's comparison algorithms (see Baselines)
// against the campaign's shared engine. Cancelling ctx aborts between
// greedy steps with an error wrapping ctx.Err().
func (c *Campaign) RunBaseline(ctx context.Context, name string, opts ...Option) (*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	// The baselines have no incremental search paths: they evaluate whole
	// deployments, so the bare estimator view serves every engine (no
	// world cache is checked out); the engine name still selects
	// sketch-based candidate pruning.
	ep, err := c.pool(cl.cfg, cl.seed)
	if err != nil {
		return nil, err
	}
	view := ep.proto.View(ctx, cl.cfg.workers)
	view.EvalMode = cl.cfg.evalMode
	cfg := baselines.Config{
		Engine:            cl.cfg.engine,
		Model:             cl.cfg.model,
		Diffusion:         cl.cfg.diffusion,
		LiveEdgeMemBudget: cl.cfg.memBudget,
		EvalMode:          cl.cfg.evalMode,
		Samples:           cl.cfg.samples,
		Seed:              cl.seed,
		Workers:           cl.cfg.workers,
		CandidateCap:      cl.cfg.candidateCap,
		LimitedK:          cl.cfg.limitedK,
		Evaluator:         view,
		Progress:          cl.progressFor(name),
	}
	var o *baselines.Outcome
	switch name {
	case "IM-U":
		o, err = baselines.IM(ctx, c.p.inst, cfg)
	case "IM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.IM(ctx, c.p.inst, cfg)
	case "PM-U":
		o, err = baselines.PM(ctx, c.p.inst, cfg)
	case "PM-L":
		cfg.Strategy = baselines.Limited
		o, err = baselines.PM(ctx, c.p.inst, cfg)
	case "IM-S":
		o, err = baselines.IMS(ctx, c.p.inst, cfg)
	default:
		return nil, fmt.Errorf("s3crm: unknown baseline %q (want one of %v)", name, Baselines())
	}
	if err != nil {
		return nil, fmt.Errorf("s3crm: %w", err)
	}
	r := resultFrom(name, c.p.inst, o.Deployment, view, cl.cfg.samples, cl.degraded)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("s3crm: final measurement aborted: %w", err)
	}
	return r, nil
}

// Evaluate measures one hand-built deployment against the campaign's shared
// possible worlds: the expected benefit, the closed-form coupon cost, the
// redemption rate and hop statistics.
func (c *Campaign) Evaluate(ctx context.Context, dep Deployment, opts ...Option) (*Result, error) {
	rs, err := c.EvaluateBatch(ctx, []Deployment{dep}, opts...)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// EvaluateBatch measures many candidate deployments against the same shared
// Monte-Carlo samples — common random numbers, so differences between the
// results are far less noisy than independently sampled evaluations, and
// any live-edge row materialized by one deployment serves the rest. The
// deployments are evaluated concurrently across the campaign's workers;
// results are returned in input order and are bit-identical to sequential
// evaluation.
func (c *Campaign) EvaluateBatch(ctx context.Context, deps []Deployment, opts ...Option) ([]*Result, error) {
	cl, err := c.newCall(opts)
	if err != nil {
		return nil, err
	}
	ds := make([]*diffusion.Deployment, len(deps))
	for i, dep := range deps {
		if ds[i], err = c.p.buildDeployment(dep); err != nil {
			return nil, err
		}
	}
	ep, err := c.pool(cl.cfg, cl.seed)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(ds))
	workers := cl.cfg.workers
	if workers > len(ds) {
		workers = len(ds)
	}
	if workers <= 1 || len(ds) < 2 {
		// Sequential batch: one view, per-evaluation parallelism as
		// configured. The cancellation check runs after each evaluation —
		// a cancelled view breaks out of its world sweep with partial
		// sums, so a result computed under a cancelled ctx is garbage and
		// must never be returned.
		view := ep.proto.View(ctx, cl.cfg.workers)
		view.EvalMode = cl.cfg.evalMode
		for i, d := range ds {
			results[i] = resultFrom("custom", c.p.inst, d, view, cl.cfg.samples, cl.degraded)
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("s3crm: evaluate aborted after %d of %d deployments: %w", i, len(ds), err)
			}
		}
		return results, nil
	}
	// Parallel batch: fan the deployments out across workers, each worker
	// evaluating sequentially on its own view (evaluations are independent
	// and worlds stateless, so the fan-out is bit-identical to the
	// sequential loop).
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			view := ep.proto.View(ctx, 0)
			view.EvalMode = cl.cfg.evalMode
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(ds) || ctx.Err() != nil {
					return
				}
				results[i] = resultFrom("custom", c.p.inst, ds[i], view, cl.cfg.samples, cl.degraded)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		done := 0
		for _, r := range results {
			if r != nil {
				done++
			}
		}
		return nil, fmt.Errorf("s3crm: evaluate aborted after %d of %d deployments: %w", done, len(ds), err)
	}
	return results, nil
}

// resultFrom measures a solved deployment with the given estimator view and
// assembles the public result. samples is the call's effective Monte-Carlo
// world count and degraded whether a degradation hook lowered it below the
// request; both are reported alongside the standard-error bar derived from
// the per-world benefit variance the kernels accumulate.
func resultFrom(name string, inst *diffusion.Instance, d *diffusion.Deployment, est diffusion.Evaluator, samples int, degraded bool) *Result {
	res := est.Evaluate(d)
	seedCost := inst.SeedCostOf(d)
	scCost := inst.SCCostOf(d)
	out := &Result{
		Algorithm:        name,
		Coupons:          map[int]int{},
		Benefit:          res.Benefit,
		SeedCost:         seedCost,
		CouponCost:       scCost,
		TotalCost:        seedCost + scCost,
		FarthestHop:      res.FarthestHop,
		EffectiveSamples: samples,
		Degraded:         degraded,
	}
	if out.TotalCost > 0 {
		out.RedemptionRate = out.Benefit / out.TotalCost
		// The costs are deterministic in the deployment, so the objective's
		// Monte-Carlo error is the benefit's scaled by 1/cost.
		out.StdErr = stats.StdErrFromMoments(samples, res.Benefit, res.BenefitSqMean) / out.TotalCost
	}
	for _, s := range d.Seeds() {
		out.Seeds = append(out.Seeds, int(s))
	}
	sort.Ints(out.Seeds)
	for _, v := range d.Allocated() {
		out.Coupons[int(v)] = d.K(v)
	}
	return out
}
